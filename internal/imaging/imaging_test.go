package imaging

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testLatent(seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, LatentDim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestGenerateEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := Generate(rng, testLatent(2), 7, GenConfig{PayloadBytes: 512})
	got, err := Decode(im.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Width != im.Width || got.Height != im.Height ||
		got.ObjX != im.ObjX || got.ObjY != im.ObjY ||
		got.ObjW != im.ObjW || got.ObjH != im.ObjH ||
		got.Category != im.Category {
		t.Fatalf("header mismatch: %+v vs %+v", got, im)
	}
	if got.Latent != im.Latent {
		t.Fatal("latent mismatch after roundtrip")
	}
	if len(got.Payload) != len(im.Payload) {
		t.Fatalf("payload length %d, want %d", len(got.Payload), len(im.Payload))
	}
	for i := range got.Payload {
		if got.Payload[i] != im.Payload[i] {
			t.Fatal("payload corrupted")
		}
	}
}

func TestObjectWindowInsideFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		im := Generate(rng, testLatent(4), 0, GenConfig{})
		if int(im.ObjX)+int(im.ObjW) > int(im.Width) || int(im.ObjY)+int(im.ObjH) > int(im.Height) {
			t.Fatalf("object window escapes frame: %+v", im)
		}
		if im.ObjW == 0 || im.ObjH == 0 {
			t.Fatalf("degenerate object window: %+v", im)
		}
	}
}

func TestGenerateNoiseControlsSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := testLatent(6)
	tight := Generate(rng, base, 0, GenConfig{Noise: 0.01})
	loose := Generate(rng, base, 0, GenConfig{Noise: 1.0})
	var dTight, dLoose float64
	for i := range base {
		dt := float64(tight.Latent[i] - base[i])
		dl := float64(loose.Latent[i] - base[i])
		dTight += dt * dt
		dLoose += dl * dl
	}
	if dTight >= dLoose {
		t.Fatalf("noise scaling broken: tight %v >= loose %v", dTight, dLoose)
	}
}

func TestGeneratePanicsOnBadLatent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong latent dim")
		}
	}()
	Generate(rand.New(rand.NewSource(1)), make([]float32, LatentDim-1), 0, GenConfig{})
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	valid := Generate(rng, testLatent(8), 3, GenConfig{PayloadBytes: 128}).Encode()
	tests := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", valid[:8]},
		{"bad version", append([]byte{99}, valid[1:]...)},
		{"truncated payload", valid[:len(valid)-5]},
		{"extended payload", append(append([]byte(nil), valid...), 1, 2, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.b); err == nil {
				t.Error("corrupt blob accepted")
			}
		})
	}
}

// Property: decoding arbitrary bytes never panics.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(9)), testLatent(10), 1, GenConfig{})
	b := Generate(rand.New(rand.NewSource(9)), testLatent(10), 1, GenConfig{})
	if a.Latent != b.Latent || a.ObjX != b.ObjX {
		t.Fatal("same seed produced different images")
	}
}
