package forward

import (
	"math/rand"
	"testing"
)

func benchIndex(b *testing.B, n int) *Index {
	b.Helper()
	ix := New()
	for i := 0; i < n; i++ {
		if _, err := ix.Append(sampleAttrs(i)); err != nil {
			b.Fatal(err)
		}
	}
	return ix
}

func BenchmarkAppend(b *testing.B) {
	ix := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Append(sampleAttrs(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet measures the result-assembly read (record + URL).
func BenchmarkGet(b *testing.B) {
	ix := benchIndex(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	ids := make([]uint32, 4096)
	for i := range ids {
		ids[i] = uint32(rng.Intn(100_000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ix.Get(ids[i%len(ids)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkNumeric measures the scan-path read (no URL materialisation).
func BenchmarkNumeric(b *testing.B) {
	ix := benchIndex(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, ok := ix.Numeric(uint32(i % 100_000)); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkSetSales measures the Fig. 7 atomic attribute update.
func BenchmarkSetSales(b *testing.B) {
	ix := benchIndex(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SetSales(uint32(i%100_000), uint32(i))
	}
}

// BenchmarkSetURL measures the var-length update (buffer append + packed
// reference store).
func BenchmarkSetURL(b *testing.B) {
	ix := benchIndex(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.SetURL(uint32(i%10_000), "jfs://img/updated/0.jpg"); err != nil {
			b.Fatal(err)
		}
	}
}
