// Package forward implements the paper's forward index (Figs. 3 and 7).
//
// Each image is numbered sequentially within a partition; its product's
// attributes are stored in an array element addressed by that number.
// Numeric attributes (product ID, sales, praise, price, category) occupy
// fixed-length fields and are updated with single aligned atomic stores, so
// — exactly as §2.3 puts it — "this operation is atomic and there is no
// conflict between search and update processes for maximum concurrency".
// Variable-length attributes (the image URL) are appended to a side buffer
// and published by atomically storing one packed reference word (chunk,
// offset, length) in the record; readers therefore always observe either
// the old URL or the new URL, never a torn mix.
//
// Storage is an append-only sequence of fixed-size record chunks behind an
// atomically published chunk directory: readers never take a lock, appends
// are serialised (each index partition has a single real-time indexing
// writer, per Fig. 4).
package forward

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"jdvs/internal/core"
)

// ImageID is the sequential number of an image within one index partition.
type ImageID = uint32

const (
	// recordsPerChunk is the number of records per storage chunk.
	recordsPerChunk = 1 << 13 // 8192

	// urlChunkSize is the byte size of each var-length buffer chunk. URLs
	// never span chunks, so this is also the maximum URL length.
	urlChunkSize = 1 << 20 // 1 MiB

	// Packed URL reference layout: 16-bit chunk | 24-bit offset | 24-bit len.
	urlOffBits = 24
	urlLenBits = 24
	urlLenMask = 1<<urlLenBits - 1
	urlOffMask = 1<<urlOffBits - 1
)

// ErrURLTooLong is returned when a variable-length attribute exceeds the
// buffer chunk size.
var ErrURLTooLong = errors.New("forward: url exceeds maximum attribute length")

// MaxURLLen is the longest URL Append accepts (one var-length buffer
// chunk). Exported so callers composing multi-structure inserts can
// reject an oversized URL before committing anything elsewhere.
const MaxURLLen = urlChunkSize

// Attrs is the set of product attributes carried by one image record. It
// mirrors the paper's example attributes: "product ID, sales, prices and
// image URL" (§2.2), plus praise and category which §2.4 uses for ranking
// and query scoping. It aliases core.Attrs so every tier shares one
// representation.
type Attrs = core.Attrs

// record is one fixed-length forward index element. Every field is updated
// atomically and independently.
type record struct {
	productID atomic.Uint64
	sales     atomic.Uint32
	praise    atomic.Uint32
	price     atomic.Uint32
	category  atomic.Uint32
	urlRef    atomic.Uint64 // packed chunk/offset/len, 0 = no URL
}

type recordChunk struct {
	recs [recordsPerChunk]record
}

// urlChunk is one fixed-size segment of the var-length attribute buffer.
// buf is allocated at full size once and never reallocated; committed
// tracks how many bytes are published. Writers copy into the region past
// committed and then advance it with an atomic store, so lock-free readers
// never observe a mutating slice header or an unpublished byte.
type urlChunk struct {
	buf       []byte
	committed atomic.Int64
}

// Index is a single partition's forward index. The zero value is not
// usable; call New.
type Index struct {
	mu sync.Mutex // serialises appends and buffer writes

	dir    atomic.Pointer[[]*recordChunk]
	length atomic.Uint32 // committed record count

	urlDir    atomic.Pointer[[]*urlChunk]
	urlChunkN int // index of the chunk currently being filled (guarded by mu)
}

// New returns an empty forward index.
func New() *Index {
	ix := &Index{}
	dir := []*recordChunk{}
	ix.dir.Store(&dir)
	udir := []*urlChunk{{buf: make([]byte, urlChunkSize)}}
	ix.urlDir.Store(&udir)
	return ix
}

// Len returns the number of committed records.
func (ix *Index) Len() int { return int(ix.length.Load()) }

// Append adds a new image record and returns its sequential ImageID.
func (ix *Index) Append(a Attrs) (ImageID, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := ix.length.Load()
	rec, err := ix.ensureLocked(id)
	if err != nil {
		return 0, err
	}
	rec.productID.Store(a.ProductID)
	rec.sales.Store(a.Sales)
	rec.praise.Store(a.Praise)
	rec.price.Store(a.PriceCents)
	rec.category.Store(uint32(a.Category))
	if a.URL != "" {
		ref, err := ix.appendURLLocked(a.URL)
		if err != nil {
			return 0, err
		}
		rec.urlRef.Store(ref)
	} else {
		rec.urlRef.Store(0)
	}
	// Publish: the record becomes visible to readers only after all fields
	// are in place.
	ix.length.Store(id + 1)
	return id, nil
}

// ensureLocked grows the chunk directory to hold record id and returns the
// record slot. Caller holds mu.
func (ix *Index) ensureLocked(id ImageID) (*record, error) {
	chunks := *ix.dir.Load()
	ci := int(id / recordsPerChunk)
	if ci >= len(chunks) {
		next := make([]*recordChunk, ci+1)
		copy(next, chunks)
		for i := len(chunks); i <= ci; i++ {
			next[i] = new(recordChunk)
		}
		ix.dir.Store(&next)
		chunks = next
	}
	return &chunks[ci].recs[id%recordsPerChunk], nil
}

func (ix *Index) rec(id ImageID) *record {
	if id >= ix.length.Load() {
		return nil
	}
	chunks := *ix.dir.Load()
	return &chunks[id/recordsPerChunk].recs[id%recordsPerChunk]
}

// appendURLLocked writes s into the var-length buffer and returns the packed
// reference word. Caller holds mu. The bytes are copied into pre-allocated
// storage beyond the committed watermark and then published by advancing
// it atomically — concurrent readers never see a torn write.
func (ix *Index) appendURLLocked(s string) (uint64, error) {
	if len(s) > urlLenMask || len(s) > urlChunkSize {
		return 0, ErrURLTooLong
	}
	chunks := *ix.urlDir.Load()
	cur := chunks[ix.urlChunkN]
	off := int(cur.committed.Load())
	if off+len(s) > urlChunkSize {
		nc := &urlChunk{buf: make([]byte, urlChunkSize)}
		next := make([]*urlChunk, len(chunks)+1)
		copy(next, chunks)
		next[len(chunks)] = nc
		ix.urlDir.Store(&next)
		ix.urlChunkN = len(chunks)
		cur = nc
		off = 0
	}
	copy(cur.buf[off:off+len(s)], s)
	cur.committed.Store(int64(off + len(s))) // publish
	ref := uint64(ix.urlChunkN)<<(urlOffBits+urlLenBits) |
		uint64(off)<<urlLenBits |
		uint64(len(s))
	// ref==0 means "no URL" to callers; a zero-length string at offset 0 of
	// chunk 0 would collide, but empty URLs never reach the buffer (the
	// zero ref is stored directly for them).
	return ref, nil
}

func (ix *Index) url(ref uint64) string {
	if ref == 0 {
		return ""
	}
	ci := int(ref >> (urlOffBits + urlLenBits))
	off := int(ref>>urlLenBits) & urlOffMask
	n := int(ref) & urlLenMask
	chunks := *ix.urlDir.Load()
	if ci >= len(chunks) {
		return ""
	}
	c := chunks[ci]
	if int64(off+n) > c.committed.Load() {
		return "" // unreachable for refs published by appendURLLocked
	}
	return string(c.buf[off : off+n])
}

// Get returns the attributes of image id. ok is false if id has not been
// committed.
func (ix *Index) Get(id ImageID) (Attrs, bool) {
	r := ix.rec(id)
	if r == nil {
		return Attrs{}, false
	}
	return Attrs{
		ProductID:  r.productID.Load(),
		Sales:      r.sales.Load(),
		Praise:     r.praise.Load(),
		PriceCents: r.price.Load(),
		Category:   uint16(r.category.Load()),
		URL:        ix.url(r.urlRef.Load()),
	}, true
}

// ProductID returns just the product ID of image id (hot path for result
// assembly; avoids materialising the URL).
func (ix *Index) ProductID(id ImageID) (uint64, bool) {
	r := ix.rec(id)
	if r == nil {
		return 0, false
	}
	return r.productID.Load(), true
}

// Numeric returns the ranking attributes without touching the URL buffer.
func (ix *Index) Numeric(id ImageID) (sales, praise, price uint32, category uint16, ok bool) {
	r := ix.rec(id)
	if r == nil {
		return 0, 0, 0, 0, false
	}
	return r.sales.Load(), r.praise.Load(), r.price.Load(), uint16(r.category.Load()), true
}

// SetSales atomically updates the sales field of image id.
func (ix *Index) SetSales(id ImageID, v uint32) bool {
	r := ix.rec(id)
	if r == nil {
		return false
	}
	r.sales.Store(v)
	return true
}

// SetPraise atomically updates the praise field of image id.
func (ix *Index) SetPraise(id ImageID, v uint32) bool {
	r := ix.rec(id)
	if r == nil {
		return false
	}
	r.praise.Store(v)
	return true
}

// SetPrice atomically updates the price field of image id.
func (ix *Index) SetPrice(id ImageID, v uint32) bool {
	r := ix.rec(id)
	if r == nil {
		return false
	}
	r.price.Store(v)
	return true
}

// SetProductID atomically updates the product ID of image id — used when a
// re-listed image comes back attached to a different product.
func (ix *Index) SetProductID(id ImageID, v uint64) bool {
	r := ix.rec(id)
	if r == nil {
		return false
	}
	r.productID.Store(v)
	return true
}

// SetCategory atomically updates the category field of image id. Added so
// re-listings and attribute updates can refresh the category a
// category-scoped search filters on, not just the ranking fields.
func (ix *Index) SetCategory(id ImageID, v uint16) bool {
	r := ix.rec(id)
	if r == nil {
		return false
	}
	r.category.Store(uint32(v))
	return true
}

// SetURL updates the variable-length URL attribute of image id: the new
// value is appended to the buffer and the packed reference word is stored
// atomically (§2.3: "the value is added at the end of the buffer and the
// offset value is updated in the forward index").
func (ix *Index) SetURL(id ImageID, s string) error {
	r := ix.rec(id)
	if r == nil {
		return fmt.Errorf("forward: image %d out of range", id)
	}
	ix.mu.Lock()
	ref, err := ix.appendURLLocked(s)
	ix.mu.Unlock()
	if err != nil {
		return err
	}
	r.urlRef.Store(ref)
	return nil
}

// WriteTo serialises the index (record fields and URL strings) in a compact
// binary format. It must not run concurrently with appends.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	n := ix.length.Load()
	var written int64
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], n)
	k, err := w.Write(hdr[:])
	written += int64(k)
	if err != nil {
		return written, err
	}
	var buf [26]byte
	for id := uint32(0); id < n; id++ {
		a, _ := ix.Get(id)
		binary.LittleEndian.PutUint64(buf[0:8], a.ProductID)
		binary.LittleEndian.PutUint32(buf[8:12], a.Sales)
		binary.LittleEndian.PutUint32(buf[12:16], a.Praise)
		binary.LittleEndian.PutUint32(buf[16:20], a.PriceCents)
		binary.LittleEndian.PutUint16(buf[20:22], a.Category)
		binary.LittleEndian.PutUint32(buf[22:26], uint32(len(a.URL)))
		k, err = w.Write(buf[:])
		written += int64(k)
		if err != nil {
			return written, err
		}
		k, err = io.WriteString(w, a.URL)
		written += int64(k)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadFrom replaces the index contents from a WriteTo stream. It must not
// run concurrently with readers or writers.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [4]byte
	k, err := io.ReadFull(r, hdr[:])
	read += int64(k)
	if err != nil {
		return read, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	fresh := New()
	var buf [26]byte
	urlBuf := make([]byte, 0, 256)
	for id := uint32(0); id < n; id++ {
		k, err = io.ReadFull(r, buf[:])
		read += int64(k)
		if err != nil {
			return read, err
		}
		urlLen := binary.LittleEndian.Uint32(buf[22:26])
		if urlLen > urlLenMask {
			return read, fmt.Errorf("forward: corrupt snapshot: url length %d", urlLen)
		}
		if cap(urlBuf) < int(urlLen) {
			urlBuf = make([]byte, urlLen)
		}
		urlBuf = urlBuf[:urlLen]
		k, err = io.ReadFull(r, urlBuf)
		read += int64(k)
		if err != nil {
			return read, err
		}
		a := Attrs{
			ProductID:  binary.LittleEndian.Uint64(buf[0:8]),
			Sales:      binary.LittleEndian.Uint32(buf[8:12]),
			Praise:     binary.LittleEndian.Uint32(buf[12:16]),
			PriceCents: binary.LittleEndian.Uint32(buf[16:20]),
			Category:   binary.LittleEndian.Uint16(buf[20:22]),
			URL:        string(urlBuf),
		}
		if _, err := fresh.Append(a); err != nil {
			return read, err
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// Bound before backing, the same order every reader uses; fresh is
	// quiescent here, so this is for uniformity, not correctness.
	length := fresh.length.Load()
	ix.dir.Store(fresh.dir.Load())
	ix.urlDir.Store(fresh.urlDir.Load())
	ix.urlChunkN = fresh.urlChunkN
	ix.length.Store(length)
	return read, nil
}
