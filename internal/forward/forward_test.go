package forward

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"jdvs/internal/core"
)

func sampleAttrs(i int) Attrs {
	return Attrs{
		ProductID:  uint64(1000 + i),
		Sales:      uint32(i * 3),
		Praise:     uint32(i % 101),
		PriceCents: uint32(100 + i),
		Category:   uint16(i % 7),
		URL:        fmt.Sprintf("jfs://img/p%d/0.jpg", i),
	}
}

func TestAppendGetRoundtrip(t *testing.T) {
	ix := New()
	const n = 100
	for i := 0; i < n; i++ {
		id, err := ix.Append(sampleAttrs(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if id != uint32(i) {
			t.Fatalf("Append %d returned id %d; ids must be sequential", i, id)
		}
	}
	if ix.Len() != n {
		t.Fatalf("Len = %d, want %d", ix.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := ix.Get(uint32(i))
		if !ok {
			t.Fatalf("Get(%d) missing", i)
		}
		if got != sampleAttrs(i) {
			t.Fatalf("Get(%d) = %+v, want %+v", i, got, sampleAttrs(i))
		}
	}
}

func TestGetOutOfRange(t *testing.T) {
	ix := New()
	if _, ok := ix.Get(0); ok {
		t.Fatal("Get on empty index returned ok")
	}
	if _, err := ix.Append(sampleAttrs(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Get(1); ok {
		t.Fatal("Get past end returned ok")
	}
	if ix.SetSales(5, 1) {
		t.Fatal("SetSales past end succeeded")
	}
	if ix.SetCategory(5, 1) {
		t.Fatal("SetCategory past end succeeded")
	}
}

func TestNumericUpdates(t *testing.T) {
	ix := New()
	id, err := ix.Append(sampleAttrs(0))
	if err != nil {
		t.Fatal(err)
	}
	if !ix.SetSales(id, 777) || !ix.SetPraise(id, 88) || !ix.SetPrice(id, 999) || !ix.SetCategory(id, 42) {
		t.Fatal("numeric update rejected")
	}
	a, _ := ix.Get(id)
	if a.Sales != 777 || a.Praise != 88 || a.PriceCents != 999 || a.Category != 42 {
		t.Fatalf("updates not applied: %+v", a)
	}
	// The rest of the record is untouched.
	if a.ProductID != sampleAttrs(0).ProductID || a.URL != sampleAttrs(0).URL {
		t.Fatalf("unrelated fields disturbed: %+v", a)
	}
	if !ix.SetProductID(id, 31337) {
		t.Fatal("SetProductID rejected")
	}
	if a, _ = ix.Get(id); a.ProductID != 31337 {
		t.Fatalf("SetProductID not applied: %+v", a)
	}
	if ix.SetProductID(id+1, 1) {
		t.Fatal("SetProductID past end succeeded")
	}
}

func TestSetURLAppendsToBuffer(t *testing.T) {
	ix := New()
	id, err := ix.Append(sampleAttrs(0))
	if err != nil {
		t.Fatal(err)
	}
	oldURL := sampleAttrs(0).URL
	newURL := "jfs://img/relocated/0.jpg"
	if err := ix.SetURL(id, newURL); err != nil {
		t.Fatalf("SetURL: %v", err)
	}
	a, _ := ix.Get(id)
	if a.URL != newURL {
		t.Fatalf("URL = %q, want %q", a.URL, newURL)
	}
	if a.URL == oldURL {
		t.Fatal("URL not updated")
	}
	if err := ix.SetURL(999, "x"); err == nil {
		t.Fatal("SetURL out of range succeeded")
	}
}

func TestURLTooLong(t *testing.T) {
	ix := New()
	_, err := ix.Append(Attrs{ProductID: 1, URL: strings.Repeat("x", urlChunkSize+1)})
	if err == nil {
		t.Fatal("oversized URL accepted")
	}
}

func TestEmptyURL(t *testing.T) {
	ix := New()
	id, err := ix.Append(Attrs{ProductID: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ix.Get(id)
	if a.URL != "" {
		t.Fatalf("URL = %q, want empty", a.URL)
	}
}

func TestURLBufferChunkRollover(t *testing.T) {
	ix := New()
	// Each URL ~64 KiB: 1 MiB chunks roll over after ~16 appends.
	long := strings.Repeat("u", 64<<10)
	const n = 40
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("%s-%d", long, i)
		if _, err := ix.Append(Attrs{ProductID: uint64(i), URL: url}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		a, ok := ix.Get(uint32(i))
		if !ok || a.URL != fmt.Sprintf("%s-%d", long, i) {
			t.Fatalf("URL %d corrupted after chunk rollover", i)
		}
	}
}

func TestChunkBoundaryAppends(t *testing.T) {
	ix := New()
	n := recordsPerChunk + recordsPerChunk/2 // crosses a record-chunk boundary
	for i := 0; i < n; i++ {
		if _, err := ix.Append(sampleAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, probe := range []int{0, recordsPerChunk - 1, recordsPerChunk, n - 1} {
		got, ok := ix.Get(uint32(probe))
		if !ok || got != sampleAttrs(probe) {
			t.Fatalf("record %d wrong across chunk boundary", probe)
		}
	}
}

// Property: packed URL references decode to exactly what was appended.
func TestURLPackingProperty(t *testing.T) {
	ix := New()
	f := func(raw []string) bool {
		start := ix.Len()
		var want []string
		for _, s := range raw {
			if len(s) > 1024 {
				s = s[:1024]
			}
			want = append(want, s)
			if _, err := ix.Append(Attrs{ProductID: 1, URL: s}); err != nil {
				return false
			}
		}
		for i, s := range want {
			a, ok := ix.Get(uint32(start + i))
			if !ok || a.URL != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentReadsDuringWrites is the paper's core forward-index claim:
// attribute updates are atomic and never conflict with readers.
func TestConcurrentReadsDuringWrites(t *testing.T) {
	ix := New()
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := ix.Append(sampleAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	// Updater: each field is independently atomic, so readers verify
	// per-field sanity: observed values are always ones some writer stored.
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(31))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := uint32(rng.Intn(n))
			v := uint32(rng.Intn(1000)) * 2 // updates store only even values
			ix.SetSales(id, v)
		}
	}()
	// Appender: grows the index concurrently (bounded so memory stays flat
	// even if readers finish slowly).
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := n; i < n+200000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = ix.Append(sampleAttrs(i))
		}
	}()
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50000; i++ {
				id := uint32(rng.Intn(ix.Len()))
				a, ok := ix.Get(id)
				if !ok {
					continue
				}
				// Sales is either the original seed value or an even
				// updater value — never torn garbage above the ceiling.
				if a.Sales >= 2000 && a.Sales != sampleAttrs(int(id)).Sales {
					t.Errorf("torn sales read: %d", a.Sales)
					return
				}
				if a.URL == "" {
					t.Errorf("record %d lost its URL during concurrent append", id)
					return
				}
			}
		}(w)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

func TestSnapshotRoundtrip(t *testing.T) {
	ix := New()
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := ix.Append(sampleAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.SetSales(42, 999999)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	restored := New()
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if restored.Len() != n {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), n)
	}
	for i := 0; i < n; i++ {
		want, _ := ix.Get(uint32(i))
		got, ok := restored.Get(uint32(i))
		if !ok || got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestReadFromTruncated(t *testing.T) {
	ix := New()
	for i := 0; i < 10; i++ {
		if _, err := ix.Append(sampleAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 10, buf.Len() / 2, buf.Len() - 1} {
		restored := New()
		if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
}

// TestConcurrentWritersSerialize checks multiple goroutines appending
// concurrently produce a dense, uncorrupted index (appends are documented
// single-writer per partition, but must stay memory-safe under misuse).
func TestConcurrentAppendSafety(t *testing.T) {
	ix := New()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := ix.Append(sampleAttrs(w*per + i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", ix.Len(), workers*per)
	}
	seen := make(map[uint64]int)
	for i := 0; i < ix.Len(); i++ {
		a, ok := ix.Get(uint32(i))
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		seen[a.ProductID]++
	}
	if len(seen) != workers*per {
		t.Fatalf("%d distinct products, want %d", len(seen), workers*per)
	}
}

var _ = core.Attrs{} // keep the core import: Attrs aliases core.Attrs
