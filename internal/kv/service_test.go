package kv

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startService(t *testing.T) (*Store, *RemoteStore) {
	t.Helper()
	store := NewStore()
	svc := NewService(store)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	remote, err := DialRemote(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)
	return store, remote
}

func TestRemotePutGetRoundtrip(t *testing.T) {
	_, remote := startService(t)
	ctx := context.Background()

	if _, ok, err := remote.Get(ctx, "missing"); err != nil || ok {
		t.Fatalf("get missing = %v, %v", ok, err)
	}
	if err := remote.Put(ctx, "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := remote.Get(ctx, "k")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("get = %q,%v,%v", v, ok, err)
	}
	has, err := remote.Has(ctx, "k")
	if err != nil || !has {
		t.Fatalf("has = %v,%v", has, err)
	}
	n, err := remote.Len(ctx)
	if err != nil || n != 1 {
		t.Fatalf("len = %d,%v", n, err)
	}
	existed, err := remote.Delete(ctx, "k")
	if err != nil || !existed {
		t.Fatalf("delete = %v,%v", existed, err)
	}
	if has, _ := remote.Has(ctx, "k"); has {
		t.Fatal("key survives delete")
	}
}

func TestRemoteSharesStoreWithLocal(t *testing.T) {
	store, remote := startService(t)
	ctx := context.Background()
	// Local write visible remotely and vice versa — the "distributed KV"
	// is one store with two faces.
	store.Put("local", []byte("a"))
	if v, ok, _ := remote.Get(ctx, "local"); !ok || string(v) != "a" {
		t.Fatalf("remote missed local write: %q %v", v, ok)
	}
	if err := remote.Put(ctx, "remote", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if v, ok := store.Get("remote"); !ok || string(v) != "b" {
		t.Fatalf("local missed remote write: %q %v", v, ok)
	}
}

func TestRemotePutIfAbsent(t *testing.T) {
	_, remote := startService(t)
	ctx := context.Background()
	stored, err := remote.PutIfAbsent(ctx, "k", []byte("first"))
	if err != nil || !stored {
		t.Fatalf("first PIA = %v,%v", stored, err)
	}
	stored, err = remote.PutIfAbsent(ctx, "k", []byte("second"))
	if err != nil || stored {
		t.Fatalf("second PIA = %v,%v", stored, err)
	}
	v, _, _ := remote.Get(ctx, "k")
	if string(v) != "first" {
		t.Fatalf("value = %q", v)
	}
}

func TestRemoteEmptyValueDistinctFromMissing(t *testing.T) {
	_, remote := startService(t)
	ctx := context.Background()
	if err := remote.Put(ctx, "empty", nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := remote.Get(ctx, "empty")
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value: %q,%v,%v", v, ok, err)
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	store, remote := startService(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				if err := remote.Put(ctx, k, []byte{byte(w)}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, ok, err := remote.Get(ctx, k); err != nil || !ok {
					t.Errorf("lost own write %s: %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if store.Len() != 8*200 {
		t.Fatalf("store has %d keys, want %d", store.Len(), 8*200)
	}
}

func TestRemoteTransportErrorSurfaced(t *testing.T) {
	store := NewStore()
	svc := NewService(store)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := DialRemote(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := remote.Put(ctx, "k", []byte("v")); err == nil {
		t.Fatal("put to dead service succeeded")
	}
}

func TestKeyTooLong(t *testing.T) {
	_, remote := startService(t)
	ctx := context.Background()
	long := make([]byte, 1<<17)
	if err := remote.Put(ctx, string(long), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
}
