package kv

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store returned a value")
	}
	if s.Has("k") {
		t.Fatal("empty store has key")
	}
	s.Put("k", []byte("v1"))
	got, ok := s.Get("k")
	if !ok || string(got) != "v1" {
		t.Fatalf("Get = %q,%v", got, ok)
	}
	s.Put("k", []byte("v2")) // overwrite
	got, _ = s.Get("k")
	if string(got) != "v2" {
		t.Fatalf("overwrite failed: %q", got)
	}
	if !s.Delete("k") {
		t.Fatal("Delete reported missing")
	}
	if s.Delete("k") {
		t.Fatal("double Delete reported present")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestCopyAtBoundaries(t *testing.T) {
	s := NewStore()
	v := []byte("hello")
	s.Put("k", v)
	v[0] = 'X' // caller mutates its buffer after Put
	got, _ := s.Get("k")
	if string(got) != "hello" {
		t.Fatalf("Put aliased caller buffer: %q", got)
	}
	got[0] = 'Y' // caller mutates the returned buffer
	again, _ := s.Get("k")
	if string(again) != "hello" {
		t.Fatalf("Get returned aliased internal buffer: %q", again)
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := NewStore()
	if !s.PutIfAbsent("k", []byte("first")) {
		t.Fatal("first PutIfAbsent failed")
	}
	if s.PutIfAbsent("k", []byte("second")) {
		t.Fatal("second PutIfAbsent succeeded")
	}
	got, _ := s.Get("k")
	if string(got) != "first" {
		t.Fatalf("value = %q, want first", got)
	}
}

func TestForEach(t *testing.T) {
	s := NewStore()
	want := map[string]string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		want[k] = fmt.Sprintf("val-%d", i)
		s.Put(k, []byte(want[k]))
	}
	got := map[string]string{}
	s.ForEach(func(k string, v []byte) bool {
		got[k] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: got %q want %q", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	s.ForEach(func(string, []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Property: the store agrees with a map model under arbitrary op sequences.
func TestStoreMatchesModel(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value []byte
	}
	f := func(ops []op) bool {
		s := NewStore()
		model := map[string][]byte{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%32)
			switch o.Kind % 3 {
			case 0:
				s.Put(k, o.Value)
				model[k] = append([]byte(nil), o.Value...)
			case 1:
				s.Delete(k)
				delete(model, k)
			case 2:
				got, ok := s.Get(k)
				want, wok := model[k]
				if ok != wok || string(got) != string(want) {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	s := NewStore()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i%50)
				s.Put(k, []byte{byte(i)})
				if v, ok := s.Get(k); !ok || len(v) != 1 {
					t.Errorf("lost own write %q", k)
					return
				}
				if i%3 == 0 {
					s.Delete(k)
				}
				s.Has(fmt.Sprintf("w%d-k%d", (w+1)%workers, i%50))
			}
		}(w)
	}
	wg.Wait()
}
