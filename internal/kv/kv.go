// Package kv is the distributed key-value store substrate of Fig. 2: the
// feature-extraction pipeline "first checks if the image's features have
// been extracted through a distributed key-value store", and the feature
// database itself is keyed by image URL.
//
// The store is a 256-way sharded concurrent map with copy-at-boundary
// semantics ([]byte values are copied on Put and Get, so callers can never
// alias internal state). A TCP service and client (service.go) expose the
// same operations across processes through the shared RPC framework.
package kv

import (
	"hash/fnv"
	"sync"
)

const shardCount = 256

type shard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// Store is an in-memory sharded key-value store. The zero value is not
// usable; call NewStore.
type Store struct {
	shards [shardCount]shard
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

func (s *Store) shardFor(key string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &s.shards[h.Sum32()%shardCount]
}

// Get returns a copy of the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	dup := make([]byte, len(v))
	copy(dup, v)
	return dup, true
}

// Has reports whether key exists without copying the value — the hot path
// of the check-before-extract protocol.
func (s *Store) Has(key string) bool {
	sh := s.shardFor(key)
	sh.mu.RLock()
	_, ok := sh.m[key]
	sh.mu.RUnlock()
	return ok
}

// Put stores a copy of value under key, overwriting any previous value.
func (s *Store) Put(key string, value []byte) {
	dup := make([]byte, len(value))
	copy(dup, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.m[key] = dup
	sh.mu.Unlock()
}

// PutIfAbsent stores value only if key does not exist. It reports whether
// the value was stored — the atomic variant of the dedup check used when
// multiple indexers race on the same image.
func (s *Store) PutIfAbsent(key string, value []byte) bool {
	dup := make([]byte, len(value))
	copy(dup, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		return false
	}
	sh.m[key] = dup
	return true
}

// Delete removes key. It reports whether the key existed.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; !ok {
		return false
	}
	delete(sh.m, key)
	return true
}

// Len returns the total number of keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// ForEach invokes fn for every key/value pair. Values passed to fn are
// copies. Iteration takes each shard's read lock in turn, so it observes a
// per-shard-consistent snapshot. fn returning false stops iteration.
func (s *Store) ForEach(fn func(key string, value []byte) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		type pair struct {
			k string
			v []byte
		}
		pairs := make([]pair, 0, len(sh.m))
		for k, v := range sh.m {
			dup := make([]byte, len(v))
			copy(dup, v)
			pairs = append(pairs, pair{k, dup})
		}
		sh.mu.RUnlock()
		for _, p := range pairs {
			if !fn(p.k, p.v) {
				return
			}
		}
	}
}
