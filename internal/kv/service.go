package kv

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"jdvs/internal/rpc"
)

// The network face of the store: Fig. 2's feature-dedup check runs against
// a *distributed* key-value store, so the store is servable over TCP. A
// Service wraps a Store behind the shared RPC fabric; a RemoteStore is the
// client. In-process deployments use the embedded Store directly — the
// semantics are identical, errors aside (network clients surface transport
// errors instead of hiding them).

// RPC method identifiers for the KV service.
const (
	methodGet uint16 = 1
	methodPut uint16 = 2
	methodHas uint16 = 3
	methodDel uint16 = 4
	methodPIA uint16 = 5 // put-if-absent
	methodLen uint16 = 6
)

// Service exposes a Store over TCP.
type Service struct {
	store *Store
	srv   *rpc.Server
}

// NewService wraps store (which may be shared with in-process users).
func NewService(store *Store) *Service {
	s := &Service{store: store, srv: rpc.NewServer()}
	s.srv.Handle(methodGet, s.handleGet)
	s.srv.Handle(methodPut, s.handlePut)
	s.srv.Handle(methodHas, s.handleHas)
	s.srv.Handle(methodDel, s.handleDel)
	s.srv.Handle(methodPIA, s.handlePIA)
	s.srv.Handle(methodLen, s.handleLen)
	return s
}

// Listen binds and serves; ":0" picks a port. Returns the bound address.
func (s *Service) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Close stops serving.
func (s *Service) Close() { s.srv.Close() }

// wire format: key-value frames are [2B keyLen][key][value...]; key-only
// frames are the raw key bytes.
func packKV(key string, value []byte) ([]byte, error) {
	if len(key) > 0xffff {
		return nil, fmt.Errorf("kv: key too long (%d bytes)", len(key))
	}
	out := make([]byte, 2+len(key)+len(value))
	binary.LittleEndian.PutUint16(out, uint16(len(key)))
	copy(out[2:], key)
	copy(out[2+len(key):], value)
	return out, nil
}

func unpackKV(b []byte) (key string, value []byte, err error) {
	if len(b) < 2 {
		return "", nil, errors.New("kv: short frame")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, errors.New("kv: truncated key")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

func boolByte(v bool) []byte {
	if v {
		return []byte{1}
	}
	return []byte{0}
}

func (s *Service) handleGet(payload []byte) ([]byte, error) {
	v, ok := s.store.Get(string(payload))
	if !ok {
		return []byte{0}, nil
	}
	return append([]byte{1}, v...), nil
}

func (s *Service) handlePut(payload []byte) ([]byte, error) {
	key, value, err := unpackKV(payload)
	if err != nil {
		return nil, err
	}
	s.store.Put(key, value)
	return nil, nil
}

func (s *Service) handleHas(payload []byte) ([]byte, error) {
	return boolByte(s.store.Has(string(payload))), nil
}

func (s *Service) handleDel(payload []byte) ([]byte, error) {
	return boolByte(s.store.Delete(string(payload))), nil
}

func (s *Service) handlePIA(payload []byte) ([]byte, error) {
	key, value, err := unpackKV(payload)
	if err != nil {
		return nil, err
	}
	return boolByte(s.store.PutIfAbsent(key, value)), nil
}

func (s *Service) handleLen([]byte) ([]byte, error) {
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], uint64(s.store.Len()))
	return out[:], nil
}

// RemoteStore is a client to a Service. Methods mirror Store's, with
// transport errors surfaced.
type RemoteStore struct {
	pool *rpc.Pool
}

// DialRemote connects n pooled connections (n<=0 defaults to 2).
func DialRemote(addr string, n int) (*RemoteStore, error) {
	if n <= 0 {
		n = 2
	}
	pool, err := rpc.DialPool(addr, n)
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	return &RemoteStore{pool: pool}, nil
}

// Close releases the connections.
func (r *RemoteStore) Close() { r.pool.Close() }

// Get fetches the value for key; ok is false when absent.
func (r *RemoteStore) Get(ctx context.Context, key string) (value []byte, ok bool, err error) {
	resp, err := r.pool.Call(ctx, methodGet, []byte(key))
	if err != nil {
		return nil, false, err
	}
	if len(resp) < 1 || resp[0] == 0 {
		return nil, false, nil
	}
	out := make([]byte, len(resp)-1)
	copy(out, resp[1:])
	return out, true, nil
}

// Put stores value under key.
func (r *RemoteStore) Put(ctx context.Context, key string, value []byte) error {
	frame, err := packKV(key, value)
	if err != nil {
		return err
	}
	_, err = r.pool.Call(ctx, methodPut, frame)
	return err
}

// Has reports whether key exists.
func (r *RemoteStore) Has(ctx context.Context, key string) (bool, error) {
	resp, err := r.pool.Call(ctx, methodHas, []byte(key))
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

// Delete removes key, reporting whether it existed.
func (r *RemoteStore) Delete(ctx context.Context, key string) (bool, error) {
	resp, err := r.pool.Call(ctx, methodDel, []byte(key))
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

// PutIfAbsent stores value only if key is new, reporting whether it stored.
func (r *RemoteStore) PutIfAbsent(ctx context.Context, key string, value []byte) (bool, error) {
	frame, err := packKV(key, value)
	if err != nil {
		return false, err
	}
	resp, err := r.pool.Call(ctx, methodPIA, frame)
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

// Len returns the number of keys.
func (r *RemoteStore) Len(ctx context.Context) (int, error) {
	resp, err := r.pool.Call(ctx, methodLen, nil)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("kv: malformed len response")
	}
	return int(binary.LittleEndian.Uint64(resp)), nil
}
