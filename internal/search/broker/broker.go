// Package broker implements the middle tier of Fig. 10: "a broker forwards
// the query to all the searchers it connects to and collects the partial
// search results from each searcher".
//
// A broker is assigned a subset of the index partitions; for each partition
// it knows every replica's address and spreads queries across replicas
// round-robin, failing over to the next replica when one fails, times out,
// or returns an undecodable response — the "multiple copies for
// availability" of §2.4.
//
// # Hedged requests
//
// Waiting on a single replica makes that replica's tail the query's tail.
// Each partition group therefore records every completed replica attempt in
// a sliding latency window (metrics.Window) and, once warmed up
// (Config.HedgeWarmup attempts), hedges: when the primary attempt has been
// in flight longer than the group's observed Config.HedgeQuantile latency
// (floored at Config.HedgeMinDelay), the same request is fired at the next
// replica in round-robin order and the first successful response wins; the
// loser is cancelled. Hedge volume is capped by a per-group token bucket
// that earns Config.HedgeMaxFraction of a hedge per query, so hedging adds
// at most that fraction of extra replica load no matter how slow the tail
// gets — past the budget, slow attempts fall back to plain sequential
// failover.
//
// Observability: Stats.Hedges / HedgeWins / HedgeCancels count hedges
// fired, queries won by the hedged attempt, and in-flight attempts
// abandoned because another attempt won; Stats.Groups carries each
// partition group's live p50/p95/p99 replica-attempt latencies, so the
// hedge win rate and the thresholds driving it are scrapeable from the
// same MethodStats endpoint production monitoring already reads.
package broker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/metrics"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// Config assembles a broker.
type Config struct {
	// PartitionReplicas maps each assigned partition to its replicas'
	// searcher addresses: PartitionReplicas[i] is the replica set of the
	// i-th partition this broker serves. Required, non-empty.
	PartitionReplicas [][]string
	// ConnsPerSearcher sizes each searcher connection pool (default 2).
	ConnsPerSearcher int
	// SearcherTimeout bounds each searcher attempt (default 5s); on
	// timeout the broker fails over to the partition's next replica, so a
	// hung searcher degrades one replica, not the query.
	SearcherTimeout time.Duration
	// QueryTimeout bounds the whole fan-out, failovers included. Without
	// it, a partition whose R replicas all time out burns R×SearcherTimeout
	// serially before the query returns. When the deadline expires the
	// broker returns the partial results it has (counted in
	// Stats.Partials). Default 3×SearcherTimeout; negative disables the
	// overall bound.
	QueryTimeout time.Duration

	// HedgeQuantile is the percentile of a partition group's recent
	// replica-attempt latencies after which a still-unanswered attempt is
	// hedged to the next replica (default 95, i.e. hedge once the attempt
	// is slower than 95% of recent attempts). Negative disables hedging.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay (default 1ms), so a group whose
	// p95 sits at microseconds does not hedge on scheduling noise.
	HedgeMinDelay time.Duration
	// HedgeMaxFraction caps hedged requests as a fraction of queries per
	// partition group (default 0.1). Enforced by a token bucket: each
	// query earns the group HedgeMaxFraction of a hedge, a hedge spends
	// one token, so hedges can never exceed this fraction of query volume
	// (plus a small warm-up burst) and hedging can never double cluster
	// load. Negative disables hedging.
	HedgeMaxFraction float64
	// HedgeWarmup is the minimum number of recorded replica attempts
	// before a group starts hedging (default 50) — below it there is no
	// trustworthy quantile to act on.
	HedgeWarmup int
	// HedgeWindow sizes the per-group latency sample window (default
	// metrics.DefaultWindowSize).
	HedgeWindow int

	// ResultCacheSize, when > 0, enables the broker's result cache: up to
	// this many encoded result pages keyed by request digest, invalidated
	// by the searchers' applied-offset watermarks (0 disables caching).
	ResultCacheSize int
	// ResultCacheMaxLag is how many queue offsets a covered shard may
	// advance past a cached page's watermark snapshot before the page is
	// considered stale (default 0: any advance invalidates).
	ResultCacheMaxLag int64
	// ResultCachePoll is how often the broker re-reads the searchers'
	// applied offsets over MethodStats (default 25ms; negative disables the
	// poller — tests then drive refreshes directly).
	ResultCachePoll time.Duration

	// Addr is the listen address (":0" for ephemeral).
	Addr string
}

// hedgeBudget is a token bucket in millitokens: credit() earns perQuery
// per query, take() spends hedgeCost per hedge. The cap bounds the burst a
// long hedge-free stretch can bank.
type hedgeBudget struct {
	milli    atomic.Int64
	perQuery int64
}

const (
	hedgeCost      = 1000 // millitokens per hedge
	hedgeBudgetCap = 8 * hedgeCost
)

func (hb *hedgeBudget) credit() {
	if hb.perQuery <= 0 {
		return
	}
	for {
		cur := hb.milli.Load()
		next := cur + hb.perQuery
		if next > hedgeBudgetCap {
			next = hedgeBudgetCap
		}
		if next == cur || hb.milli.CompareAndSwap(cur, next) {
			return
		}
	}
}

func (hb *hedgeBudget) take() bool {
	for {
		cur := hb.milli.Load()
		if cur < hedgeCost {
			return false
		}
		if hb.milli.CompareAndSwap(cur, cur-hedgeCost) {
			return true
		}
	}
}

type partitionGroup struct {
	b       *Broker
	addrs   []string
	pools   []*rpc.Pool
	next    atomic.Uint64
	timeout time.Duration

	// lat records completed replica attempts; its single tracked quantile
	// is the hedge trigger (Config.HedgeQuantile).
	lat    *metrics.Window
	budget hedgeBudget
}

// Broker is a running broker node.
type Broker struct {
	srv          *rpc.Server
	groups       []*partitionGroup
	addr         string
	queryTimeout time.Duration

	hedgeMinDelay time.Duration
	hedgeWarmup   uint64
	hedging       bool

	rcache *resultCache // nil when ResultCacheSize == 0

	queries      metrics.Counter
	failures     metrics.Counter
	partials     metrics.Counter
	hedges       metrics.Counter
	hedgeWins    metrics.Counter
	hedgeCancels metrics.Counter
}

// New connects to every assigned searcher and starts serving.
func New(cfg Config) (*Broker, error) {
	if len(cfg.PartitionReplicas) == 0 {
		return nil, errors.New("broker: no partitions assigned")
	}
	if cfg.ConnsPerSearcher <= 0 {
		cfg.ConnsPerSearcher = 2
	}
	if cfg.SearcherTimeout <= 0 {
		cfg.SearcherTimeout = 5 * time.Second
	}
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = 3 * cfg.SearcherTimeout
	}
	if cfg.HedgeQuantile == 0 {
		cfg.HedgeQuantile = 95
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = time.Millisecond
	}
	if cfg.HedgeMaxFraction == 0 {
		cfg.HedgeMaxFraction = 0.1
	}
	if cfg.HedgeWarmup <= 0 {
		cfg.HedgeWarmup = 50
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	b := &Broker{
		groups:        make([]*partitionGroup, 0, len(cfg.PartitionReplicas)),
		queryTimeout:  cfg.QueryTimeout,
		hedgeMinDelay: cfg.HedgeMinDelay,
		hedgeWarmup:   uint64(cfg.HedgeWarmup),
		hedging:       cfg.HedgeQuantile > 0 && cfg.HedgeMaxFraction > 0,
	}
	perQuery := int64(0)
	if b.hedging {
		// Budget resolution is 1/hedgeCost (0.001): round, and floor at one
		// millitoken so a tiny positive fraction stays enabled instead of
		// silently truncating to zero.
		perQuery = int64(math.Round(cfg.HedgeMaxFraction * hedgeCost))
		if perQuery < 1 {
			perQuery = 1
		}
		if perQuery > hedgeCost {
			perQuery = hedgeCost // a fraction above 1 still means "at most one hedge per query"
		}
	}
	for _, replicas := range cfg.PartitionReplicas {
		if len(replicas) == 0 {
			b.closePools()
			return nil, errors.New("broker: partition with no replicas")
		}
		// Track the hedge quantile only when hedging can act on it; the
		// stats path reads exact on-demand quantiles, so a disabled broker
		// skips the periodic refresh sort entirely.
		var tracked []float64
		if b.hedging {
			tracked = []float64{cfg.HedgeQuantile}
		}
		g := &partitionGroup{
			b:       b,
			addrs:   replicas,
			timeout: cfg.SearcherTimeout,
			lat:     metrics.NewWindow(cfg.HedgeWindow, tracked...),
		}
		g.budget.perQuery = perQuery
		for _, addr := range replicas {
			pool, err := rpc.DialPool(addr, cfg.ConnsPerSearcher)
			if err != nil {
				b.closePools()
				return nil, fmt.Errorf("broker: dial searcher %s: %w", addr, err)
			}
			g.pools = append(g.pools, pool)
		}
		b.groups = append(b.groups, g)
	}
	if cfg.ResultCacheSize > 0 {
		poll := cfg.ResultCachePoll
		if poll == 0 {
			poll = 25 * time.Millisecond
		}
		b.rcache = newResultCache(b, cfg.ResultCacheSize, cfg.ResultCacheMaxLag, poll)
	}
	b.srv = rpc.NewServer()
	b.srv.Handle(search.MethodSearch, b.handleSearch)
	b.srv.Handle(search.MethodStats, b.handleStats)
	b.srv.Handle(search.MethodPing, func([]byte) ([]byte, error) { return nil, nil })
	addr, err := b.srv.Listen(cfg.Addr)
	if err != nil {
		b.closePools()
		return nil, err
	}
	b.addr = addr
	return b, nil
}

// Addr returns the broker's RPC address.
func (b *Broker) Addr() string { return b.addr }

// Close stops serving and closes searcher connections.
func (b *Broker) Close() {
	b.srv.Close()
	if b.rcache != nil {
		b.rcache.stop() // the watermark poller uses the pools; stop it first
	}
	b.closePools()
}

func (b *Broker) closePools() {
	for _, g := range b.groups {
		for _, p := range g.pools {
			p.Close()
		}
	}
}

// hedgeDelay returns how long to let the primary attempt run before
// hedging, and whether the group is ready to hedge at all (warmed up and
// quantile cache populated).
func (g *partitionGroup) hedgeDelay() (time.Duration, bool) {
	if !g.b.hedging || len(g.pools) < 2 {
		return 0, false
	}
	if g.lat.Count() < g.b.hedgeWarmup {
		return 0, false
	}
	d := g.lat.Tracked(0)
	if d <= 0 {
		return 0, false
	}
	if d < g.b.hedgeMinDelay {
		d = g.b.hedgeMinDelay
	}
	return d, true
}

// attempt is one replica attempt's outcome.
type attempt struct {
	resp   *core.SearchResponse
	err    error
	hedged bool
}

// doAttempt runs one replica attempt synchronously: per-attempt timeout,
// response decode, and latency recording. A delivered-but-undecodable
// response is an attempt failure (the caller fails over exactly like a
// timeout), so one corrupt replica cannot kill its whole partition.
//
// Cancelled losers are not recorded: their elapsed time is censored at the
// hedge delay, so feeding them (or skipping them — either way) drains the
// slow mode from the window once hedging engages. Under a persistently
// slow replica the tracked quantile therefore settles at the fast mode and
// HedgeMaxFraction's token bucket, not the quantile, becomes the governing
// cap — the budget is the load-safety invariant, the quantile only decides
// when hedging is worth starting.
func (g *partitionGroup) doAttempt(ctx context.Context, pool *rpc.Pool, payload []byte) (*core.SearchResponse, error) {
	begin := time.Now()
	attemptCtx, cancel := context.WithTimeout(ctx, g.timeout)
	defer cancel()
	raw, err := pool.Call(attemptCtx, search.MethodSearch, payload)
	var resp *core.SearchResponse
	if err == nil {
		resp, err = core.DecodeSearchResponse(raw)
		if err != nil {
			err = fmt.Errorf("broker: undecodable searcher response: %w", err)
		}
	}
	if !errors.Is(err, context.Canceled) {
		g.lat.Record(time.Since(begin))
	}
	return resp, err
}

// call queries one partition, trying each replica at most once starting
// from the round-robin cursor. Each attempt gets its own timeout so a hung
// replica costs one timeout, not the query. When the group's hedge trigger
// is armed, an attempt that outlives the hedge delay runs concurrently
// with the next replica and the first success wins; otherwise (hedging
// disabled, single replica, warm-up, or no quantile yet) attempts run
// sequentially with no extra goroutine or channel on the hot path.
func (g *partitionGroup) call(ctx context.Context, payload []byte) (*core.SearchResponse, error) {
	n := len(g.pools)
	// The cursor arithmetic stays in uint64: converting the counter to int
	// first goes negative once it passes the int range (2³¹ queries on a
	// 32-bit platform), and a negative modulo panics the index expression.
	start := g.next.Add(1)
	g.budget.credit()

	delay, armed := g.hedgeDelay()
	if !armed {
		// Sequential failover fast path.
		var lastErr error
		for i := 0; i < n; i++ {
			resp, err := g.doAttempt(ctx, g.pools[(start+uint64(i))%uint64(n)], payload)
			if err == nil {
				return resp, nil
			}
			g.b.failures.Inc()
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		return nil, lastErr
	}

	callCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	// Buffered to n so a loser's goroutine can always deliver and exit even
	// after the winner returned — no leak, no blocked send.
	results := make(chan attempt, n)
	launched := 0
	fire := func(hedged bool) {
		pool := g.pools[(start+uint64(launched))%uint64(n)]
		launched++
		go func() {
			resp, err := g.doAttempt(callCtx, pool, payload)
			results <- attempt{resp: resp, err: err, hedged: hedged}
		}()
	}

	// The hedge timer measures the CURRENT primary attempt's age: a
	// sequential failover re-arms it, so a replacement attempt gets the
	// full delay before a budget token is spent hedging it.
	timer := time.NewTimer(delay)
	defer timer.Stop()
	hedgeC := timer.C

	fire(false)
	outstanding := 1
	// win books the stats for a winning attempt: any other in-flight
	// attempt loses and is aborted by the deferred cancelAll.
	win := func(r attempt) *core.SearchResponse {
		if outstanding > 0 {
			g.b.hedgeCancels.Add(int64(outstanding))
		}
		if r.hedged {
			g.b.hedgeWins.Inc()
		}
		return r.resp
	}
	// abort handles query-deadline expiry: a success may already sit in
	// the buffered results channel having raced the deadline — prefer it
	// over returning an error. Whatever is still truly in flight is
	// aborted by cancelAll and counted as failed attempts, since its
	// result is never read.
	abort := func() (*core.SearchResponse, error) {
		for outstanding > 0 {
			select {
			case r := <-results:
				outstanding--
				if r.err == nil {
					return win(r), nil
				}
				g.b.failures.Inc()
			default:
				g.b.failures.Add(int64(outstanding))
				return nil, ctx.Err()
			}
		}
		return nil, ctx.Err()
	}
	var lastErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				return win(r), nil
			}
			g.b.failures.Inc()
			lastErr = r.err
			if ctx.Err() != nil {
				return abort()
			}
			if launched < n {
				if hedgeC != nil {
					// Restart the hedge clock: the replacement attempt gets
					// the full delay before a token is spent hedging it.
					// (Go 1.23 timer semantics: Reset discards any pending
					// fire, so the old deadline cannot leak through.)
					timer.Reset(delay)
				}
				fire(false) // plain sequential failover
				outstanding++
			} else if outstanding == 0 {
				return nil, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < n && g.budget.take() {
				g.b.hedges.Inc()
				fire(true)
				outstanding++
			}
		case <-ctx.Done():
			return abort()
		}
	}
}

func (b *Broker) handleSearch(payload []byte) ([]byte, error) {
	b.queries.Inc()
	// Validate the request before fanning out garbage.
	req, err := core.DecodeSearchRequest(payload)
	if err != nil {
		return nil, err
	}
	// Result cache: the request digest covers feature, predicates, scopes,
	// and k. Snapshot the watermarks before the fan-out so a page computed
	// while updates land is pinned to the conservative (older) reading.
	var ckey string
	var cmarks []int64
	if b.rcache != nil {
		ckey = cacheKey(payload)
		if resp, ok := b.rcache.get(ckey); ok {
			return resp, nil
		}
		cmarks = b.rcache.snapshotMarks()
	}
	// One deadline over the whole fan-out: replica failover and hedging
	// keep going only while the query as a whole still has budget, and an
	// expired query returns whatever partitions already answered.
	ctx := context.Background()
	if b.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.queryTimeout)
		defer cancel()
	}

	type partial struct {
		resp *core.SearchResponse
		err  error
	}
	results := make([]partial, len(b.groups))
	var wg sync.WaitGroup
	for i, g := range b.groups {
		wg.Add(1)
		go func(i int, g *partitionGroup) {
			defer wg.Done()
			resp, err := g.call(ctx, payload)
			results[i] = partial{resp: resp, err: err}
		}(i, g)
	}
	wg.Wait()

	merged := &core.SearchResponse{}
	okCount := 0
	var lastErr error
	for _, r := range results {
		if r.err != nil {
			lastErr = r.err
			continue
		}
		okCount++
		merged.Hits = append(merged.Hits, r.resp.Hits...)
		merged.Scanned += r.resp.Scanned
		merged.Probed += r.resp.Probed
	}
	if okCount == 0 {
		return nil, fmt.Errorf("broker: all partitions failed: %w", lastErr)
	}
	if okCount < len(b.groups) {
		b.partials.Inc()
	}
	// Keep the k best across partitions; the blender re-ranks globally.
	sort.Slice(merged.Hits, func(i, j int) bool {
		if merged.Hits[i].Dist != merged.Hits[j].Dist {
			return merged.Hits[i].Dist < merged.Hits[j].Dist
		}
		return merged.Hits[i].Image.Pack() < merged.Hits[j].Image.Pack()
	})
	if req.TopK > 0 && len(merged.Hits) > req.TopK {
		merged.Hits = merged.Hits[:req.TopK]
	}
	out := core.EncodeSearchResponse(merged)
	// Cache only complete pages: a partial would pin a missing partition's
	// absence into every repeat of a hot query until invalidation.
	if b.rcache != nil && okCount == len(b.groups) {
		b.rcache.put(ckey, out, cmarks)
	}
	return out, nil
}

// GroupStats is one partition group's live replica-attempt latency
// estimate — the distribution the hedge trigger acts on.
type GroupStats struct {
	Partition int    `json:"partition"` // index within this broker's assignment
	Replicas  int    `json:"replicas"`
	Samples   uint64 `json:"samples"`
	P50Micros int64  `json:"p50_micros"`
	P95Micros int64  `json:"p95_micros"`
	P99Micros int64  `json:"p99_micros"`
}

// Stats is the broker's stats payload.
type Stats struct {
	Partitions int   `json:"partitions"`
	Queries    int64 `json:"queries"`
	// Failures counts replica attempts that failed — transport errors,
	// per-attempt timeouts and undecodable responses alike (each triggers
	// failover to the next replica). Partials counts queries answered with
	// at least one partition missing (e.g. the QueryTimeout expired
	// mid-failover).
	Failures int64 `json:"failures"`
	Partials int64 `json:"partials"`
	// Hedges counts hedged attempts fired; HedgeWins those whose response
	// won the query; HedgeCancels in-flight attempts abandoned because
	// another attempt won first. Win rate = HedgeWins / Hedges.
	Hedges       int64 `json:"hedges"`
	HedgeWins    int64 `json:"hedge_wins"`
	HedgeCancels int64 `json:"hedge_cancels"`
	// Result-cache counters (all zero when the cache is disabled). Hits
	// are pages served without any fan-out; StaleEvictions are entries
	// dropped because a covered shard's applied offset advanced past the
	// entry's watermark snapshot plus ResultCacheMaxLag. PollErrors counts
	// failed watermark reads (replica down or undecodable stats).
	ResultCacheHits           int64 `json:"result_cache_hits"`
	ResultCacheMisses         int64 `json:"result_cache_misses"`
	ResultCacheStaleEvictions int64 `json:"result_cache_stale_evictions"`
	ResultCacheEntries        int64 `json:"result_cache_entries"`
	ResultCacheBytes          int64 `json:"result_cache_bytes"`
	ResultCachePollErrors     int64 `json:"result_cache_poll_errors"`
	// Groups carries each partition group's live attempt-latency
	// percentiles from its sliding sample window.
	Groups []GroupStats `json:"groups"`
}

func (b *Broker) handleStats([]byte) ([]byte, error) {
	st := Stats{
		Partitions:   len(b.groups),
		Queries:      b.queries.Value(),
		Failures:     b.failures.Value(),
		Partials:     b.partials.Value(),
		Hedges:       b.hedges.Value(),
		HedgeWins:    b.hedgeWins.Value(),
		HedgeCancels: b.hedgeCancels.Value(),
	}
	if b.rcache != nil {
		cs := b.rcache.entries.Stats()
		st.ResultCacheHits = b.rcache.hits.Value()
		st.ResultCacheMisses = b.rcache.misses.Value()
		st.ResultCacheStaleEvictions = b.rcache.staleEvictions.Value()
		st.ResultCacheEntries = cs.Entries
		st.ResultCacheBytes = cs.Bytes
		st.ResultCachePollErrors = b.rcache.pollErrors.Value()
	}
	for i, g := range b.groups {
		qs := g.lat.Quantiles(50, 95, 99)
		st.Groups = append(st.Groups, GroupStats{
			Partition: i,
			Replicas:  len(g.pools),
			Samples:   g.lat.Count(),
			P50Micros: qs[0].Microseconds(),
			P95Micros: qs[1].Microseconds(),
			P99Micros: qs[2].Microseconds(),
		})
	}
	return json.Marshal(st)
}
