// Package broker implements the middle tier of Fig. 10: "a broker forwards
// the query to all the searchers it connects to and collects the partial
// search results from each searcher".
//
// A broker is assigned a subset of the index partitions; for each partition
// it knows every replica's address and spreads queries across replicas
// round-robin, failing over to the next replica when one is down — the
// "multiple copies for availability" of §2.4.
package broker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/metrics"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// Config assembles a broker.
type Config struct {
	// PartitionReplicas maps each assigned partition to its replicas'
	// searcher addresses: PartitionReplicas[i] is the replica set of the
	// i-th partition this broker serves. Required, non-empty.
	PartitionReplicas [][]string
	// ConnsPerSearcher sizes each searcher connection pool (default 2).
	ConnsPerSearcher int
	// SearcherTimeout bounds each searcher attempt (default 5s); on
	// timeout the broker fails over to the partition's next replica, so a
	// hung searcher degrades one replica, not the query.
	SearcherTimeout time.Duration
	// QueryTimeout bounds the whole fan-out, failovers included. Without
	// it, a partition whose R replicas all time out burns R×SearcherTimeout
	// serially before the query returns. When the deadline expires the
	// broker returns the partial results it has (counted in
	// Stats.Partials). Default 3×SearcherTimeout; negative disables the
	// overall bound.
	QueryTimeout time.Duration
	// Addr is the listen address (":0" for ephemeral).
	Addr string
}

type partitionGroup struct {
	addrs   []string
	pools   []*rpc.Pool
	next    atomic.Uint64
	timeout time.Duration
}

// Broker is a running broker node.
type Broker struct {
	srv          *rpc.Server
	groups       []*partitionGroup
	addr         string
	queryTimeout time.Duration

	queries  metrics.Counter
	failures metrics.Counter
	partials metrics.Counter
}

// New connects to every assigned searcher and starts serving.
func New(cfg Config) (*Broker, error) {
	if len(cfg.PartitionReplicas) == 0 {
		return nil, errors.New("broker: no partitions assigned")
	}
	if cfg.ConnsPerSearcher <= 0 {
		cfg.ConnsPerSearcher = 2
	}
	if cfg.SearcherTimeout <= 0 {
		cfg.SearcherTimeout = 5 * time.Second
	}
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = 3 * cfg.SearcherTimeout
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	b := &Broker{
		groups:       make([]*partitionGroup, 0, len(cfg.PartitionReplicas)),
		queryTimeout: cfg.QueryTimeout,
	}
	for _, replicas := range cfg.PartitionReplicas {
		if len(replicas) == 0 {
			b.closePools()
			return nil, errors.New("broker: partition with no replicas")
		}
		g := &partitionGroup{addrs: replicas, timeout: cfg.SearcherTimeout}
		for _, addr := range replicas {
			pool, err := rpc.DialPool(addr, cfg.ConnsPerSearcher)
			if err != nil {
				b.closePools()
				return nil, fmt.Errorf("broker: dial searcher %s: %w", addr, err)
			}
			g.pools = append(g.pools, pool)
		}
		b.groups = append(b.groups, g)
	}
	b.srv = rpc.NewServer()
	b.srv.Handle(search.MethodSearch, b.handleSearch)
	b.srv.Handle(search.MethodStats, b.handleStats)
	b.srv.Handle(search.MethodPing, func([]byte) ([]byte, error) { return nil, nil })
	addr, err := b.srv.Listen(cfg.Addr)
	if err != nil {
		b.closePools()
		return nil, err
	}
	b.addr = addr
	return b, nil
}

// Addr returns the broker's RPC address.
func (b *Broker) Addr() string { return b.addr }

// Close stops serving and closes searcher connections.
func (b *Broker) Close() {
	b.srv.Close()
	b.closePools()
}

func (b *Broker) closePools() {
	for _, g := range b.groups {
		for _, p := range g.pools {
			p.Close()
		}
	}
}

// call queries one partition, trying each replica at most once starting
// from the round-robin cursor. Each attempt gets its own timeout so a hung
// replica costs one timeout, not the query.
func (g *partitionGroup) call(ctx context.Context, payload []byte) ([]byte, error) {
	n := len(g.pools)
	// The cursor arithmetic stays in uint64: converting the counter to int
	// first goes negative once it passes the int range (2³¹ queries on a
	// 32-bit platform), and a negative modulo panics the index expression.
	start := g.next.Add(1)
	var lastErr error
	for i := 0; i < n; i++ {
		pool := g.pools[(start+uint64(i))%uint64(n)]
		attemptCtx, cancel := context.WithTimeout(ctx, g.timeout)
		resp, err := pool.Call(attemptCtx, search.MethodSearch, payload)
		cancel()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

func (b *Broker) handleSearch(payload []byte) ([]byte, error) {
	b.queries.Inc()
	// Validate the request before fanning out garbage.
	req, err := core.DecodeSearchRequest(payload)
	if err != nil {
		return nil, err
	}
	// One deadline over the whole fan-out: replica failover keeps going
	// only while the query as a whole still has budget, and an expired
	// query returns whatever partitions already answered.
	ctx := context.Background()
	if b.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.queryTimeout)
		defer cancel()
	}

	type partial struct {
		resp *core.SearchResponse
		err  error
	}
	results := make([]partial, len(b.groups))
	var wg sync.WaitGroup
	for i, g := range b.groups {
		wg.Add(1)
		go func(i int, g *partitionGroup) {
			defer wg.Done()
			raw, err := g.call(ctx, payload)
			if err != nil {
				results[i] = partial{err: err}
				return
			}
			resp, err := core.DecodeSearchResponse(raw)
			results[i] = partial{resp: resp, err: err}
		}(i, g)
	}
	wg.Wait()

	merged := &core.SearchResponse{}
	okCount := 0
	var lastErr error
	for _, r := range results {
		if r.err != nil {
			lastErr = r.err
			b.failures.Inc()
			continue
		}
		okCount++
		merged.Hits = append(merged.Hits, r.resp.Hits...)
		merged.Scanned += r.resp.Scanned
		merged.Probed += r.resp.Probed
	}
	if okCount == 0 {
		return nil, fmt.Errorf("broker: all partitions failed: %w", lastErr)
	}
	if okCount < len(b.groups) {
		b.partials.Inc()
	}
	// Keep the k best across partitions; the blender re-ranks globally.
	sort.Slice(merged.Hits, func(i, j int) bool {
		if merged.Hits[i].Dist != merged.Hits[j].Dist {
			return merged.Hits[i].Dist < merged.Hits[j].Dist
		}
		return merged.Hits[i].Image.Pack() < merged.Hits[j].Image.Pack()
	})
	if req.TopK > 0 && len(merged.Hits) > req.TopK {
		merged.Hits = merged.Hits[:req.TopK]
	}
	return core.EncodeSearchResponse(merged), nil
}

// Stats is the broker's stats payload.
type Stats struct {
	Partitions int   `json:"partitions"`
	Queries    int64 `json:"queries"`
	// Failures counts partition fan-out legs that failed; Partials counts
	// queries answered with at least one partition missing (e.g. the
	// QueryTimeout expired mid-failover).
	Failures int64 `json:"failures"`
	Partials int64 `json:"partials"`
}

func (b *Broker) handleStats([]byte) ([]byte, error) {
	return json.Marshal(Stats{
		Partitions: len(b.groups),
		Queries:    b.queries.Value(),
		Failures:   b.failures.Value(),
		Partials:   b.partials.Value(),
	})
}
