package broker

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"jdvs/internal/core"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// TestResultCacheStaleness drives the watermark-invalidation protocol
// deterministically: a cached page keeps serving while every covered
// shard's applied offset stays within the entry's snapshot + MaxLag, and
// is bypassed — counted as a stale eviction — the moment one shard passes
// that bound. The poller is disabled; the test advances offsets and calls
// refreshWatermarks itself.
func TestResultCacheStaleness(t *testing.T) {
	const maxLag = 2
	r0, r1 := newFakeReplica(t, 1), newFakeReplica(t, 2)
	r0.applied.Store(10)
	r1.applied.Store(10)
	br, err := New(Config{
		PartitionReplicas: [][]string{{r0.addr}, {r1.addr}},
		ResultCacheSize:   8,
		ResultCacheMaxLag: maxLag,
		ResultCachePoll:   -1, // manual refreshes only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	query := func() {
		t.Helper()
		if _, err := callBroker(t, br.Addr(), validReq()); err != nil {
			t.Fatal(err)
		}
	}

	// Miss, fan out, cache with marks [10, 10].
	query()
	if got := r0.calls.Load() + r1.calls.Load(); got != 2 {
		t.Fatalf("first query fanned out %d searcher calls; want 2", got)
	}
	// Hit: no new searcher calls.
	query()
	if got := r0.calls.Load() + r1.calls.Load(); got != 2 {
		t.Fatalf("cached query reached the searchers (%d calls)", got)
	}

	// Advance shard 0 exactly to the bound (10 + maxLag): still fresh.
	r0.applied.Store(10 + maxLag)
	br.rcache.refreshWatermarks(br)
	query()
	if got := r0.calls.Load() + r1.calls.Load(); got != 2 {
		t.Fatalf("within-slack query reached the searchers (%d calls)", got)
	}

	// One offset past the bound: the entry must be bypassed and evicted.
	r0.applied.Store(10 + maxLag + 1)
	br.rcache.refreshWatermarks(br)
	query()
	if got := r0.calls.Load() + r1.calls.Load(); got != 4 {
		t.Fatalf("stale query did not recompute (total %d searcher calls; want 4)", got)
	}
	st := brokerStats(t, br.Addr())
	if st.ResultCacheStaleEvictions != 1 {
		t.Fatalf("stale evictions = %d; want 1", st.ResultCacheStaleEvictions)
	}
	if st.ResultCacheHits != 2 || st.ResultCacheMisses != 2 {
		t.Fatalf("hits/misses = %d/%d; want 2/2", st.ResultCacheHits, st.ResultCacheMisses)
	}

	// The recompute re-cached the page under the new watermark snapshot.
	query()
	if got := r0.calls.Load() + r1.calls.Load(); got != 4 {
		t.Fatalf("re-cached query reached the searchers (%d calls)", got)
	}
}

// TestResultCacheConcurrentInvalidation races queries against watermark
// advances and refreshes — the -race proof that the serve/invalidate paths
// share no unsynchronised state. Correctness of counts is covered by the
// deterministic test above; here every query must simply succeed.
func TestResultCacheConcurrentInvalidation(t *testing.T) {
	r0 := newFakeReplica(t, 1)
	br, err := New(Config{
		PartitionReplicas: [][]string{{r0.addr}},
		ResultCacheSize:   64,
		ResultCacheMaxLag: 1,
		ResultCachePoll:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: advance the shard and re-read watermarks
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r0.applied.Store(i)
			br.rcache.refreshWatermarks(br)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := rpc.Dial(br.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			req := validReq()
			req.TopK = 3 + w%2 // two distinct cache keys across the workers
			payload := core.EncodeSearchRequest(req)
			for i := 0; i < 200; i++ {
				if _, err := c.Call(context.Background(), search.MethodSearch, payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Let the queriers finish, then stop the writer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	defer func() { <-done }()
	defer close(stop)
}

// TestResultCacheSkipsPartialPages checks that a page missing a partition
// is never cached: a repeat of the same query fans out again instead of
// pinning the gap.
func TestResultCacheSkipsPartialPages(t *testing.T) {
	r0, r1 := newFakeReplica(t, 1), newFakeReplica(t, 2)
	br, err := New(Config{
		PartitionReplicas: [][]string{{r0.addr}, {r1.addr}},
		ResultCacheSize:   8,
		ResultCachePoll:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	r1.srv.Close() // partition 1 goes dark after the broker connected

	for i := 0; i < 2; i++ {
		if _, err := callBroker(t, br.Addr(), validReq()); err != nil {
			t.Fatal(err)
		}
	}
	st := brokerStats(t, br.Addr())
	if st.Partials != 2 {
		t.Fatalf("partials = %d; want 2", st.Partials)
	}
	if st.ResultCacheHits != 0 || st.ResultCacheMisses != 2 {
		t.Fatalf("hits/misses = %d/%d; want 0/2 (partials must not be cached)",
			st.ResultCacheHits, st.ResultCacheMisses)
	}
}

// BenchmarkBrokerCachedQuery is the CI artifact gating the result cache:
// the same single-partition query with the cache off and on. The cached
// side should collapse to digest-lookup cost, and its cache-hitrate metric
// lands in BENCH_broker.json next to the latency numbers.
func BenchmarkBrokerCachedQuery(b *testing.B) {
	for _, cached := range []bool{false, true} {
		b.Run(fmt.Sprintf("cached=%v", cached), func(b *testing.B) {
			r0 := newFakeReplica(b, 7)
			cfg := Config{
				PartitionReplicas: [][]string{{r0.addr}},
				ResultCachePoll:   -1, // static corpus: no invalidation traffic
			}
			if cached {
				cfg.ResultCacheSize = 1024
			}
			br, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer br.Close()
			c, err := rpc.Dial(br.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := core.EncodeSearchRequest(validReq())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Call(context.Background(), search.MethodSearch, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := brokerStats(b, br.Addr())
			if st.Queries > 0 {
				b.ReportMetric(float64(st.ResultCacheHits)/float64(st.Queries), "cache-hitrate")
			}
		})
	}
}
