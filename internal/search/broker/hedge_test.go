package broker

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// fakeReplica is a searcher stand-in whose behaviour can be flipped at
// runtime: answer fast, answer after a delay, answer garbage, fail, or
// hang until released. Its canned response carries ProductID = id so a
// test can tell which replica won a query.
type fakeReplica struct {
	id      uint64
	addr    string
	srv     *rpc.Server
	resp    []byte
	mode    atomic.Int32
	delay   atomic.Int64 // ns, for modeSlow
	calls   atomic.Int64
	applied atomic.Int64 // reported over MethodStats for result-cache tests
	unhang  chan struct{}
}

const (
	modeFast int32 = iota
	modeSlow
	modeGarbage
	modeSlowErr
	modeHang
)

func newFakeReplica(t testing.TB, id uint64) *fakeReplica {
	t.Helper()
	f := &fakeReplica{
		id:     id,
		unhang: make(chan struct{}),
		resp: core.EncodeSearchResponse(&core.SearchResponse{
			Hits:   []core.Hit{{Image: core.ImageRef{Local: uint32(id)}, Dist: 0.5, ProductID: id, URL: "fake"}},
			Probed: 1,
		}),
	}
	f.srv = rpc.NewServer()
	f.srv.Handle(search.MethodSearch, f.handle)
	f.srv.Handle(search.MethodStats, func([]byte) ([]byte, error) {
		return json.Marshal(map[string]int64{"applied_offset": f.applied.Load()})
	})
	addr, err := f.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.addr = addr
	t.Cleanup(func() {
		f.release()
		f.srv.Close()
	})
	return f
}

// release lets hung handlers return so Server.Close can drain.
func (f *fakeReplica) release() {
	select {
	case <-f.unhang:
	default:
		close(f.unhang)
	}
}

func (f *fakeReplica) handle([]byte) ([]byte, error) {
	f.calls.Add(1)
	switch f.mode.Load() {
	case modeSlow:
		time.Sleep(time.Duration(f.delay.Load()))
		return f.resp, nil
	case modeGarbage:
		return []byte{0xFF, 0xEE, 0xDD}, nil
	case modeSlowErr:
		time.Sleep(time.Duration(f.delay.Load()))
		return nil, errors.New("fake replica: injected failure")
	case modeHang:
		<-f.unhang
		return nil, errors.New("fake replica: released from hang")
	default:
		return f.resp, nil
	}
}

func validReq() *core.SearchRequest {
	return &core.SearchRequest{Feature: []float32{1, 2, 3, 4}, TopK: 3, NProbe: 4, Category: -1}
}

func brokerStats(t testing.TB, addr string) Stats {
	t.Helper()
	c, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitGoroutines polls until the process goroutine count drops to max, or
// fails with a full stack dump.
func waitGoroutines(t *testing.T, max int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= max {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines stuck at %d (want <= %d):\n%s", runtime.NumGoroutine(), max, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHedgeSlowReplicaWins: once a group is warmed up, a query whose
// primary replica turns slow is answered by the hedged attempt at roughly
// the hedge delay, not at the slow replica's latency.
func TestHedgeSlowReplicaWins(t *testing.T) {
	slow, fast := newFakeReplica(t, 1), newFakeReplica(t, 2)
	b, err := New(Config{
		PartitionReplicas: [][]string{{slow.addr, fast.addr}},
		HedgeMinDelay:     2 * time.Millisecond,
		HedgeWarmup:       8,
		HedgeWindow:       64,
		HedgeMaxFraction:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Warm the latency window while both replicas are fast.
	for i := 0; i < 40; i++ {
		if _, err := callBroker(t, b.Addr(), validReq()); err != nil {
			t.Fatalf("warmup query %d: %v", i, err)
		}
	}

	slow.mode.Store(modeSlow)
	slow.delay.Store(int64(250 * time.Millisecond))
	for i := 0; i < 20; i++ {
		startAt := time.Now()
		resp, err := callBroker(t, b.Addr(), validReq())
		elapsed := time.Since(startAt)
		if err != nil {
			t.Fatalf("query %d with slow replica: %v", i, err)
		}
		if len(resp.Hits) == 0 {
			t.Fatalf("query %d returned no hits", i)
		}
		// Every query — including those whose round-robin primary is the
		// slow replica — must finish far below the 250ms injected latency.
		if elapsed > 150*time.Millisecond {
			t.Fatalf("query %d took %v; hedge did not rescue the slow primary", i, elapsed)
		}
	}

	st := brokerStats(t, b.Addr())
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("stats = %+v, want hedges > 0 and hedge wins > 0", st)
	}
	if st.HedgeCancels == 0 {
		t.Fatalf("stats = %+v, want hedge cancels > 0 (slow losers abandoned)", st)
	}
	if len(st.Groups) != 1 || st.Groups[0].Samples == 0 {
		t.Fatalf("stats groups = %+v, want one sampled group", st.Groups)
	}
}

// TestHedgeBudgetExhaustedFallsBackToFailover: with a starved hedge
// budget, a slow-then-failing primary is never hedged — the query pays the
// primary's latency and then fails over sequentially, and still succeeds.
func TestHedgeBudgetExhaustedFallsBackToFailover(t *testing.T) {
	flaky, healthy := newFakeReplica(t, 1), newFakeReplica(t, 2)
	b, err := New(Config{
		PartitionReplicas: [][]string{{flaky.addr, healthy.addr}},
		HedgeMinDelay:     time.Millisecond,
		HedgeWarmup:       4,
		HedgeWindow:       64,
		// One millitoken per query: the budget can never reach a whole
		// hedge within this test.
		HedgeMaxFraction: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 10; i++ {
		if _, err := callBroker(t, b.Addr(), validReq()); err != nil {
			t.Fatalf("warmup query %d: %v", i, err)
		}
	}

	flaky.mode.Store(modeSlowErr)
	flaky.delay.Store(int64(30 * time.Millisecond))
	sawSlowPath := false
	for i := 0; i < 10; i++ {
		startAt := time.Now()
		resp, err := callBroker(t, b.Addr(), validReq())
		elapsed := time.Since(startAt)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(resp.Hits) == 0 || resp.Hits[0].ProductID != healthy.id {
			t.Fatalf("query %d not answered by healthy replica: %+v", i, resp.Hits)
		}
		if elapsed >= 30*time.Millisecond {
			sawSlowPath = true // paid the primary's full latency: no hedge fired
		}
	}
	if !sawSlowPath {
		t.Fatal("no query paid the flaky primary's latency; round-robin never picked it?")
	}
	st := brokerStats(t, b.Addr())
	if st.Hedges != 0 {
		t.Fatalf("stats = %+v, want zero hedges with a starved budget", st)
	}
	if st.Failures == 0 {
		t.Fatalf("stats = %+v, want failover failures counted", st)
	}
}

// TestHedgeCancellationNoGoroutineLeak: hedged queries whose losers are
// cancelled must not leave attempt goroutines behind (run under -race in
// CI).
func TestHedgeCancellationNoGoroutineLeak(t *testing.T) {
	slow, fast := newFakeReplica(t, 1), newFakeReplica(t, 2)
	b, err := New(Config{
		PartitionReplicas: [][]string{{slow.addr, fast.addr}},
		HedgeMinDelay:     2 * time.Millisecond,
		HedgeWarmup:       8,
		HedgeWindow:       64,
		HedgeMaxFraction:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 20; i++ {
		if _, err := callBroker(t, b.Addr(), validReq()); err != nil {
			t.Fatal(err)
		}
	}
	baseline := runtime.NumGoroutine()

	slow.mode.Store(modeSlow)
	slow.delay.Store(int64(100 * time.Millisecond))
	for i := 0; i < 10; i++ {
		if _, err := callBroker(t, b.Addr(), validReq()); err != nil {
			t.Fatal(err)
		}
	}
	// Attempt goroutines and the slow server's sleeping handlers must all
	// drain; allow a little scheduler slack over the baseline.
	waitGoroutines(t, baseline+2)
}

// TestQueryTimeoutCancelsHedges: an expired overall deadline must abort
// the primary and its in-flight hedge promptly, return the healthy
// partitions' partial results, and leak no goroutines.
func TestQueryTimeoutCancelsHedges(t *testing.T) {
	wedgyA, wedgyB := newFakeReplica(t, 1), newFakeReplica(t, 2)
	healthy := newFakeReplica(t, 3)
	b, err := New(Config{
		PartitionReplicas: [][]string{{wedgyA.addr, wedgyB.addr}, {healthy.addr}},
		SearcherTimeout:   10 * time.Second,
		QueryTimeout:      300 * time.Millisecond,
		HedgeMinDelay:     time.Millisecond,
		HedgeWarmup:       8,
		HedgeWindow:       64,
		HedgeMaxFraction:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Warm past the window's quantile-refresh interval so the hedge
	// trigger is armed for the wedged partition's group.
	for i := 0; i < 40; i++ {
		if _, err := callBroker(t, b.Addr(), validReq()); err != nil {
			t.Fatal(err)
		}
	}
	baseline := runtime.NumGoroutine()

	wedgyA.mode.Store(modeHang)
	wedgyB.mode.Store(modeHang)
	startAt := time.Now()
	resp, err := callBroker(t, b.Addr(), validReq())
	elapsed := time.Since(startAt)
	if err != nil {
		t.Fatalf("query with wedged partition failed outright: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("query took %v; deadline did not cancel the hedged attempts", elapsed)
	}
	if len(resp.Hits) == 0 || resp.Hits[0].ProductID != healthy.id {
		t.Fatalf("healthy partition's partial results missing: %+v", resp.Hits)
	}

	st := brokerStats(t, b.Addr())
	if st.Partials == 0 {
		t.Fatalf("stats = %+v, want partials > 0", st)
	}
	if st.Hedges == 0 {
		t.Fatalf("stats = %+v, want the wedged primary to have been hedged", st)
	}
	if st.Failures == 0 {
		t.Fatalf("stats = %+v, want aborted attempts counted as failures", st)
	}

	// Broker-side attempt goroutines must exit with the deadline even
	// though the wedged servers never answer. Release the hung handlers
	// (they are in-process goroutines too) before counting.
	wedgyA.release()
	wedgyB.release()
	waitGoroutines(t, baseline+2)
}

// TestUndecodableResponseFailsOver: a replica that delivers garbage bytes
// must count as a failed attempt and fail over to the next replica instead
// of killing its whole partition.
func TestUndecodableResponseFailsOver(t *testing.T) {
	corrupt, healthy := newFakeReplica(t, 1), newFakeReplica(t, 2)
	corrupt.mode.Store(modeGarbage)
	b, err := New(Config{PartitionReplicas: [][]string{{corrupt.addr, healthy.addr}}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 6; i++ {
		resp, err := callBroker(t, b.Addr(), validReq())
		if err != nil {
			t.Fatalf("query %d failed despite a healthy replica: %v", i, err)
		}
		if len(resp.Hits) == 0 || resp.Hits[0].ProductID != healthy.id {
			t.Fatalf("query %d not answered by the healthy replica: %+v", i, resp.Hits)
		}
	}
	st := brokerStats(t, b.Addr())
	if st.Failures == 0 {
		t.Fatalf("stats = %+v, want undecodable responses counted in failures", st)
	}

	// A partition whose every replica is corrupt still fails the query.
	healthy.mode.Store(modeGarbage)
	if _, err := callBroker(t, b.Addr(), validReq()); err == nil {
		t.Fatal("query succeeded with only corrupt replicas")
	}
}
