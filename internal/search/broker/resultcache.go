package broker

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"jdvs/internal/cache"
	"jdvs/internal/metrics"
	"jdvs/internal/search"
)

// resultCache is the broker-level result cache: encoded result pages keyed
// by the request's content digest — which covers the query feature, filter
// predicates, scopes, and k, because all of them are part of the encoded
// SearchRequest. Entries are invalidated by watermark, not TTL: each entry
// records, per covered partition group, the applied-offset watermark the
// searchers reported when the page was computed, and the entry is served
// only while no group's current watermark has advanced past its snapshot
// plus maxLag offsets. The watermark rides the searchers' existing
// MethodStats payload (searcher.Stats.AppliedOffset) — no new RPCs — and is
// refreshed by a background poller, so a cached page can never resurrect a
// tombstoned or refreshed image beyond the configured staleness bound.
type resultCache struct {
	entries *cache.Cache[cachedResult]
	maxLag  int64

	// marks[g] is partition group g's current applied-offset watermark:
	// the monotonic max of every replica's reported AppliedOffset.
	marks []atomic.Int64

	hits           metrics.Counter
	misses         metrics.Counter
	staleEvictions metrics.Counter
	pollErrors     metrics.Counter

	pollStop chan struct{}
	pollWG   sync.WaitGroup
}

// cachedResult is one cached page with its per-group watermark snapshot.
type cachedResult struct {
	resp  []byte
	marks []int64
}

// newResultCache builds the cache and takes an initial watermark reading;
// poll > 0 also starts the background refresher.
func newResultCache(b *Broker, size int, maxLag int64, poll time.Duration) *resultCache {
	rc := &resultCache{
		entries:  cache.New[cachedResult](size),
		maxLag:   maxLag,
		marks:    make([]atomic.Int64, len(b.groups)),
		pollStop: make(chan struct{}),
	}
	rc.refreshWatermarks(b)
	if poll > 0 {
		rc.pollWG.Add(1)
		go rc.pollLoop(b, poll)
	}
	return rc
}

func (rc *resultCache) stop() {
	close(rc.pollStop)
	rc.pollWG.Wait()
}

func (rc *resultCache) pollLoop(b *Broker, every time.Duration) {
	defer rc.pollWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-rc.pollStop:
			return
		case <-t.C:
			rc.refreshWatermarks(b)
		}
	}
}

// appliedStats is the slice of searcher.Stats the watermark needs; decoding
// into a local struct keeps the broker from importing the searcher package.
type appliedStats struct {
	AppliedOffset int64 `json:"applied_offset"`
}

// refreshWatermarks reads every replica's applied offset over the existing
// stats endpoint and raises each group's watermark to the max it saw.
// Replicas of one group consume the same queue partition, so the max is the
// furthest any copy of the data has moved — the conservative invalidation
// signal. Unreachable replicas are skipped (and counted): a down replica
// cannot advance its shard, so the remaining reads still bound staleness.
func (rc *resultCache) refreshWatermarks(b *Broker) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for gi, g := range b.groups {
		for _, pool := range g.pools {
			raw, err := pool.Call(ctx, search.MethodStats, nil)
			if err != nil {
				rc.pollErrors.Inc()
				continue
			}
			var st appliedStats
			if err := json.Unmarshal(raw, &st); err != nil {
				rc.pollErrors.Inc()
				continue
			}
			casMax(&rc.marks[gi], st.AppliedOffset)
		}
	}
}

// casMax raises a monotonic watermark to v if v is ahead of it.
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// cacheKey digests the raw encoded request — feature vector, predicates,
// scopes, and TopK all live in the payload, so byte-identical payloads are
// exactly the queries that may share a page.
func cacheKey(payload []byte) string {
	sum := sha256.Sum256(payload)
	return string(sum[:])
}

// snapshotMarks captures the current per-group watermarks — taken BEFORE
// the fan-out, so a page computed while updates were landing is attributed
// to the older, more conservative snapshot.
func (rc *resultCache) snapshotMarks() []int64 {
	out := make([]int64, len(rc.marks))
	for i := range rc.marks {
		out[i] = rc.marks[i].Load()
	}
	return out
}

// get returns a cached page for key if every covered group's watermark is
// still within maxLag of the entry's snapshot. A stale entry is removed and
// counted; the caller recomputes.
func (rc *resultCache) get(key string) ([]byte, bool) {
	e, ok := rc.entries.Get(key)
	if !ok {
		rc.misses.Inc()
		return nil, false
	}
	for g := range e.marks {
		if rc.marks[g].Load() > e.marks[g]+rc.maxLag {
			rc.entries.Remove(key)
			rc.staleEvictions.Inc()
			rc.misses.Inc()
			return nil, false
		}
	}
	rc.hits.Inc()
	return e.resp, true
}

// put stores a freshly computed full page under key with the watermark
// snapshot taken before its fan-out.
func (rc *resultCache) put(key string, resp []byte, marks []int64) {
	//jdvs:alias-ok resp is a freshly encoded page and marks a fresh watermark snapshot; the sole caller (Broker.search) hands both over write-once and never touches them again
	rc.entries.Put(key, cachedResult{resp: resp, marks: marks}, int64(len(resp)))
}
