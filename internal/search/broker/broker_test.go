package broker

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cnn"
	"jdvs/internal/core"
	"jdvs/internal/featuredb"
	"jdvs/internal/imagestore"
	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
	"jdvs/internal/search/searcher"
)

const testDim = 16

// twoPartitionFixture builds two searcher partitions (optionally with a
// replica each) holding disjoint product sets.
type twoPartitionFixture struct {
	cat       *catalog.Catalog
	feats     map[string][]float32
	searchers [][]*searcher.Searcher // [partition][replica]
}

func newTwoPartitions(t *testing.T, replicas int) *twoPartitionFixture {
	t.Helper()
	f := &twoPartitionFixture{feats: make(map[string][]float32)}
	images := imagestore.New()
	cat, err := catalog.Generate(catalog.Config{Products: 40, Categories: 4, Seed: 23}, images)
	if err != nil {
		t.Fatal(err)
	}
	f.cat = cat
	res := &indexer.Resolver{
		DB:        featuredb.New(),
		Images:    images,
		Extractor: cnn.New(cnn.Config{Dim: testDim, Seed: 9}),
	}
	var train []float32
	for i := range cat.Products {
		p := &cat.Products[i]
		for _, url := range p.ImageURLs {
			e, _, err := res.Resolve(url, p.Attrs(url))
			if err != nil {
				t.Fatal(err)
			}
			f.feats[url] = e.Feature
			train = append(train, e.Feature...)
		}
	}
	newShard := func(part int) *index.Shard {
		s, err := index.New(index.Config{Dim: testDim, NLists: 8, DefaultNProbe: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Train(train, 1); err != nil {
			t.Fatal(err)
		}
		for i := range cat.Products {
			p := &cat.Products[i]
			if int(p.ID)%2 != part { // split products across partitions
				continue
			}
			for _, url := range p.ImageURLs {
				if _, _, err := s.Insert(p.Attrs(url), f.feats[url]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s
	}
	for part := 0; part < 2; part++ {
		var group []*searcher.Searcher
		for r := 0; r < replicas; r++ {
			node, err := searcher.New(searcher.Config{
				Partition: core.PartitionID(part),
				Shard:     newShard(part),
			})
			if err != nil {
				t.Fatal(err)
			}
			group = append(group, node)
		}
		f.searchers = append(f.searchers, group)
	}
	t.Cleanup(func() {
		for _, group := range f.searchers {
			for _, s := range group {
				s.Close()
			}
		}
	})
	return f
}

func (f *twoPartitionFixture) groups() [][]string {
	out := make([][]string, len(f.searchers))
	for p, group := range f.searchers {
		for _, s := range group {
			out[p] = append(out[p], s.Addr())
		}
	}
	return out
}

func callBroker(t *testing.T, addr string, req *core.SearchRequest) (*core.SearchResponse, error) {
	t.Helper()
	c, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodSearch, core.EncodeSearchRequest(req))
	if err != nil {
		return nil, err
	}
	return core.DecodeSearchResponse(raw)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no partitions accepted")
	}
	if _, err := New(Config{PartitionReplicas: [][]string{{}}}); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := New(Config{PartitionReplicas: [][]string{{"127.0.0.1:1"}}}); err == nil {
		t.Fatal("dial to dead searcher succeeded")
	}
}

func TestFanOutMergesAcrossPartitions(t *testing.T) {
	f := newTwoPartitions(t, 1)
	b, err := New(Config{PartitionReplicas: f.groups()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Query for a product on each partition: both must be reachable through
	// the one broker.
	for part := 0; part < 2; part++ {
		var target *catalog.Product
		for i := range f.cat.Products {
			if int(f.cat.Products[i].ID)%2 == part {
				target = &f.cat.Products[i]
				break
			}
		}
		url := target.ImageURLs[0]
		resp, err := callBroker(t, b.Addr(), &core.SearchRequest{
			Feature: f.feats[url], TopK: 3, NProbe: 8, Category: -1,
		})
		if err != nil {
			t.Fatalf("broker search: %v", err)
		}
		if len(resp.Hits) == 0 || resp.Hits[0].ProductID != target.ID {
			t.Fatalf("partition %d product not found via broker: %+v", part, resp.Hits)
		}
		if resp.Hits[0].Image.Partition != core.PartitionID(part) {
			t.Fatalf("hit partition = %d, want %d", resp.Hits[0].Image.Partition, part)
		}
	}
}

func TestMergeOrderedAndTruncated(t *testing.T) {
	f := newTwoPartitions(t, 1)
	b, err := New(Config{PartitionReplicas: f.groups()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rng := rand.New(rand.NewSource(1))
	q := make([]float32, testDim)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	resp, err := callBroker(t, b.Addr(), &core.SearchRequest{Feature: q, TopK: 7, NProbe: 8, Category: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) != 7 {
		t.Fatalf("merged %d hits, want 7", len(resp.Hits))
	}
	for i := 1; i < len(resp.Hits); i++ {
		if resp.Hits[i].Dist < resp.Hits[i-1].Dist {
			t.Fatalf("merged hits not sorted by distance: %+v", resp.Hits)
		}
	}
	// Scan diagnostics aggregate across partitions.
	if resp.Probed < 2 {
		t.Fatalf("probed = %d, want >= 2", resp.Probed)
	}
}

// TestReplicaFailover kills one replica; queries must keep succeeding via
// the survivor ("each partition can have multiple copies for
// availability").
func TestReplicaFailover(t *testing.T) {
	f := newTwoPartitions(t, 2)
	b, err := New(Config{PartitionReplicas: f.groups()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	url := f.cat.Products[0].ImageURLs[0]
	req := &core.SearchRequest{Feature: f.feats[url], TopK: 3, NProbe: 8, Category: -1}

	// Kill replica 0 of partition 0.
	f.searchers[0][0].Close()
	for i := 0; i < 10; i++ {
		resp, err := callBroker(t, b.Addr(), req)
		if err != nil {
			t.Fatalf("query %d failed after replica death: %v", i, err)
		}
		if len(resp.Hits) == 0 {
			t.Fatalf("query %d degraded after replica death", i)
		}
	}
}

// TestAllReplicasDeadDegradesGracefully: losing a whole partition degrades
// results; losing everything errors.
func TestPartitionLossDegradation(t *testing.T) {
	f := newTwoPartitions(t, 1)
	b, err := New(Config{PartitionReplicas: f.groups()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rng := rand.New(rand.NewSource(2))
	q := make([]float32, testDim)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	req := &core.SearchRequest{Feature: q, TopK: 50, NProbe: 8, Category: -1}

	f.searchers[0][0].Close() // partition 0 gone entirely
	resp, err := callBroker(t, b.Addr(), req)
	if err != nil {
		t.Fatalf("partial partition loss failed the query: %v", err)
	}
	for _, h := range resp.Hits {
		if h.Image.Partition == 0 {
			t.Fatalf("hit from dead partition: %+v", h)
		}
	}

	f.searchers[1][0].Close() // all partitions gone
	if _, err := callBroker(t, b.Addr(), req); err == nil {
		t.Fatal("query succeeded with every searcher dead")
	}
	// Failure counter advanced.
	c, err := rpc.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Failures == 0 {
		t.Fatalf("stats = %+v, want failures > 0", st)
	}
}

// TestRoundRobinCursorNearWrap: the replica cursor modulo is computed in
// uint64; a counter past the int range must keep rotating replicas instead
// of producing a negative index and panicking the fan-out goroutine.
func TestRoundRobinCursorNearWrap(t *testing.T) {
	f := newTwoPartitions(t, 2)
	b, err := New(Config{PartitionReplicas: f.groups()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, g := range b.groups {
		g.next.Store(math.MaxUint64 - 3)
	}
	url := f.cat.Products[0].ImageURLs[0]
	req := &core.SearchRequest{Feature: f.feats[url], TopK: 3, NProbe: 8, Category: -1}
	for i := 0; i < 8; i++ {
		resp, err := callBroker(t, b.Addr(), req)
		if err != nil {
			t.Fatalf("query %d across cursor wrap: %v", i, err)
		}
		if len(resp.Hits) == 0 {
			t.Fatalf("query %d returned no hits", i)
		}
	}
}

// hangServer accepts connections and swallows everything without ever
// responding — a searcher that is up but wedged.
func hangServer(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	return lis.Addr().String()
}

// TestQueryTimeoutReturnsPartialResults: a wedged partition must cost the
// query at most QueryTimeout, not SearcherTimeout × replicas, and the
// healthy partitions' results still come back.
func TestQueryTimeoutReturnsPartialResults(t *testing.T) {
	f := newTwoPartitions(t, 1)
	groups := f.groups()
	// Partition 1 is served only by a wedged searcher.
	groups[1] = []string{hangServer(t)}
	b, err := New(Config{
		PartitionReplicas: groups,
		SearcherTimeout:   10 * time.Second,
		QueryTimeout:      300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Query for a partition-0 product.
	var target *catalog.Product
	for i := range f.cat.Products {
		if int(f.cat.Products[i].ID)%2 == 0 {
			target = &f.cat.Products[i]
			break
		}
	}
	url := target.ImageURLs[0]
	startAt := time.Now()
	resp, err := callBroker(t, b.Addr(), &core.SearchRequest{
		Feature: f.feats[url], TopK: 5, NProbe: 8, Category: -1,
	})
	elapsed := time.Since(startAt)
	if err != nil {
		t.Fatalf("partial query failed: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("query took %v; QueryTimeout did not bound the fan-out", elapsed)
	}
	if len(resp.Hits) == 0 || resp.Hits[0].ProductID != target.ID {
		t.Fatalf("healthy partition's results missing: %+v", resp.Hits)
	}
	for _, h := range resp.Hits {
		if h.Image.Partition == 1 {
			t.Fatalf("hit from the wedged partition: %+v", h)
		}
	}

	// The degradation is visible in stats.
	c, err := rpc.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Partials == 0 || st.Failures == 0 {
		t.Fatalf("stats = %+v, want partials > 0 and failures > 0", st)
	}
}

func TestBadRequestRejected(t *testing.T) {
	f := newTwoPartitions(t, 1)
	b, err := New(Config{PartitionReplicas: f.groups()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := rpc.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), search.MethodSearch, []byte("garbage")); err == nil {
		t.Fatal("garbage request fanned out")
	}
}
