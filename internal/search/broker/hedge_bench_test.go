package broker

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/metrics"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// benchReplica is a canned-response searcher that injects extra latency
// into a deterministic fraction of its requests (every slowEvery-th call
// sleeps slowDelay) — the fault model of the hedging acceptance criterion:
// one replica +200ms on 20% of requests.
type benchReplica struct {
	srv       *rpc.Server
	addr      string
	resp      []byte
	calls     atomic.Int64
	slowEvery int64
	slowDelay time.Duration
}

func newBenchReplica(b *testing.B, slowEvery int64, slowDelay time.Duration) *benchReplica {
	b.Helper()
	r := &benchReplica{
		slowEvery: slowEvery,
		slowDelay: slowDelay,
		resp: core.EncodeSearchResponse(&core.SearchResponse{
			Hits:   []core.Hit{{Dist: 0.5, ProductID: 7, URL: "bench"}},
			Probed: 1,
		}),
	}
	r.srv = rpc.NewServer()
	r.srv.Handle(search.MethodSearch, func([]byte) ([]byte, error) {
		if r.slowEvery > 0 && r.calls.Add(1)%r.slowEvery == 0 {
			time.Sleep(r.slowDelay)
		}
		return r.resp, nil
	})
	addr, err := r.srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	r.addr = addr
	b.Cleanup(func() { r.srv.Close() })
	return r
}

// BenchmarkBrokerTailLatency measures the broker's per-query latency
// distribution against a two-replica partition where one replica is +200ms
// on 20% of its requests. The hedged=false/true pair is the tail
// comparison the CI bench artifact tracks: hedging should cut p99 by far
// more than half while keeping hedge volume under HedgeMaxFraction
// (reported as the hedge-frac metric).
func BenchmarkBrokerTailLatency(b *testing.B) {
	const (
		slowDelay = 200 * time.Millisecond
		slowEvery = 5 // 20% of the slow replica's requests
	)
	for _, hedged := range []bool{false, true} {
		b.Run(fmt.Sprintf("hedged=%v", hedged), func(b *testing.B) {
			slow := newBenchReplica(b, slowEvery, slowDelay)
			fast := newBenchReplica(b, 0, 0)
			cfg := Config{
				PartitionReplicas: [][]string{{slow.addr, fast.addr}},
				// Round-robin makes the slow replica primary for half the
				// queries, so ~10% of all attempts carry the +200ms mode —
				// above a p95 trigger's blind spot. Trigger at p85, squarely
				// inside the fast mass; production defaults suit the <5%
				// tails hedging normally targets.
				HedgeQuantile:    85,
				HedgeMinDelay:    time.Millisecond,
				HedgeMaxFraction: 0.25,
				HedgeWindow:      256,
			}
			if !hedged {
				cfg.HedgeQuantile = -1
			}
			br, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer br.Close()

			c, err := rpc.Dial(br.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := core.EncodeSearchRequest(&core.SearchRequest{
				Feature: []float32{1, 2, 3, 4}, TopK: 3, NProbe: 4, Category: -1,
			})
			query := func() time.Duration {
				startAt := time.Now()
				if _, err := c.Call(context.Background(), search.MethodSearch, payload); err != nil {
					b.Fatal(err)
				}
				return time.Since(startAt)
			}
			// Warm the latency window past the hedge warm-up (default 50).
			for i := 0; i < 64; i++ {
				query()
			}

			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lat = append(lat, query())
			}
			b.StopTimer()

			qs := metrics.Quantiles(lat, 50, 99)
			b.ReportMetric(float64(qs[0].Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(qs[1].Nanoseconds()), "p99-ns")

			raw, err := c.Call(context.Background(), search.MethodStats, nil)
			if err != nil {
				b.Fatal(err)
			}
			var st Stats
			if err := json.Unmarshal(raw, &st); err != nil {
				b.Fatal(err)
			}
			if st.Queries > 0 {
				b.ReportMetric(float64(st.Hedges)/float64(st.Queries), "hedge-frac")
			}
			if st.Hedges > 0 {
				b.ReportMetric(float64(st.HedgeWins)/float64(st.Hedges), "hedge-winrate")
			}
		})
	}
}
