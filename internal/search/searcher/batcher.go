package searcher

import (
	"sync"
	"time"

	"jdvs/internal/core"
)

// defaultBatchMaxQueries caps a batch when Config.BatchMaxQueries is
// unset: large enough to amortise the shared list traversal under heavy
// concurrency, small enough that per-batch work stays bounded.
const defaultBatchMaxQueries = 16

// batcher collects concurrent search requests into windows and executes
// each window as one index.SearchBatch pass. The first request to arrive
// while no window is open becomes the leader: it waits out BatchWindow
// (or until the batch fills to maxQ), executes the batch on its own
// goroutine, and hands every follower its result over a per-entry
// channel. Followers just enqueue and wait. The rpc server runs each
// request on its own goroutine, so collecting blocks only the requests
// being batched, never the connection.
//
// The window is the latency a lone query pays for batching: a leader with
// no followers still sleeps BatchWindow before executing (as a
// single-query batch, which index.SearchBatch routes straight to Search).
// Deployments opt in via Config.BatchWindow, trading that bounded
// per-query delay for higher closed-loop throughput under concurrency.
type batcher struct {
	s      *Searcher
	window time.Duration
	maxQ   int

	mu         sync.Mutex
	collecting bool          // a leader's window is open
	full       chan struct{} // signalled when pending+leader reaches maxQ
	pending    []batchEntry  // followers of the open window
}

type batchEntry struct {
	req *core.SearchRequest
	ch  chan batchResult
}

type batchResult struct {
	resp *core.SearchResponse
	err  error
}

func newBatcher(s *Searcher, window time.Duration, maxQ int) *batcher {
	if maxQ <= 0 {
		maxQ = defaultBatchMaxQueries
	}
	return &batcher{s: s, window: window, maxQ: maxQ}
}

// do routes one search request through the collector and returns its
// individual result.
func (b *batcher) do(req *core.SearchRequest) (*core.SearchResponse, error) {
	b.mu.Lock()
	if b.collecting {
		// Join the open window and wait for the leader to deliver.
		e := batchEntry{req: req, ch: make(chan batchResult, 1)}
		b.pending = append(b.pending, e)
		if len(b.pending)+1 >= b.maxQ {
			select {
			case b.full <- struct{}{}:
			default: // leader already signalled
			}
		}
		b.mu.Unlock()
		r := <-e.ch
		return r.resp, r.err
	}

	// Become the leader: open a window, wait it out (or until full), then
	// close the window and execute everything it collected.
	b.collecting = true
	full := make(chan struct{}, 1)
	b.full = full
	b.mu.Unlock()

	timer := time.NewTimer(b.window)
	select {
	case <-full:
		timer.Stop()
	case <-timer.C:
	}

	b.mu.Lock()
	followers := b.pending
	b.pending = nil
	b.collecting = false
	b.full = nil
	b.mu.Unlock()

	reqs := make([]*core.SearchRequest, 0, 1+len(followers))
	reqs = append(reqs, req)
	for _, e := range followers {
		reqs = append(reqs, e.req)
	}
	resps, errs := b.s.shard.Load().SearchBatch(reqs)
	for i, e := range followers {
		e.ch <- batchResult{resp: resps[1+i], err: errs[1+i]}
	}
	return resps[0], errs[0]
}
