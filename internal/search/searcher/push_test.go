package searcher

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/index"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// TestPushSnapshotSwapsIndex covers the distribution step of the weekly
// full indexing cycle: a freshly built shard is pushed to a running
// searcher over the network and served with zero downtime.
func TestPushSnapshotSwapsIndex(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Build a replacement index holding a single marker product.
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := next.SetCodebook(f.shard.Codebook()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	mf := make([]float32, testDim)
	for i := range mf {
		mf[i] = float32(rng.NormFloat64())
	}
	if _, _, err := next.Insert(core.Attrs{ProductID: 424242, URL: "jfs://pushed.jpg"}, mf); err != nil {
		t.Fatal(err)
	}

	// Queries keep flowing while the new index is pushed.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	oldURL := f.cat.Products[0].ImageURLs[0]
	go func() {
		defer wg.Done()
		c, err := rpc.Dial(s.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Call(context.Background(), search.MethodSearch,
				core.EncodeSearchRequest(&core.SearchRequest{Feature: f.feats[oldURL], TopK: 1, NProbe: 8, Category: -1})); err != nil {
				t.Errorf("query during push: %v", err)
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := PushSnapshot(ctx, s.Addr(), next); err != nil {
		t.Fatalf("PushSnapshot: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The pushed index is live.
	resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: mf, TopK: 1, NProbe: 8, Category: -1})
	if len(resp.Hits) != 1 || resp.Hits[0].ProductID != 424242 {
		t.Fatalf("pushed index not serving: %+v", resp.Hits)
	}
	// The old corpus is gone (full index replaces, never merges).
	resp = callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[oldURL], TopK: 5, NProbe: 8, Category: -1})
	for _, h := range resp.Hits {
		if h.URL == oldURL {
			t.Fatalf("old index leaked through the swap: %+v", h)
		}
	}
}

// TestPushSnapshotMultiChunk is the regression test for the 64MB push
// ceiling: a snapshot far larger than the configured chunk size must
// round-trip through the chunked streaming path and serve searches
// identically to the source shard.
func TestPushSnapshotMultiChunk(t *testing.T) {
	f := newFixture(t, 40)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Rebuild the same corpus into a second shard — the "freshly built
	// index" being distributed.
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := next.SetCodebook(f.shard.Codebook()); err != nil {
		t.Fatal(err)
	}
	for i := range f.cat.Products {
		p := &f.cat.Products[i]
		for _, url := range p.ImageURLs {
			if _, _, err := next.Insert(p.Attrs(url), f.feats[url]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The transfer must genuinely span many chunks.
	const chunkSize = 1024
	var snap bytes.Buffer
	if err := next.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Len() < 3*chunkSize {
		t.Fatalf("snapshot is %d bytes; too small to exercise chunking at %d", snap.Len(), chunkSize)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := PushSnapshotWith(ctx, s.Addr(), next, PushOptions{ChunkSize: chunkSize}); err != nil {
		t.Fatalf("chunked PushSnapshot: %v", err)
	}
	if got := s.SnapshotLoads(); got != 1 {
		t.Fatalf("SnapshotLoads = %d, want 1", got)
	}
	if got := s.LoadSessions(); got != 0 {
		t.Fatalf("LoadSessions = %d after commit, want 0", got)
	}

	// The swapped-in shard answers exactly like the source shard: same
	// hits, same order, same distances, for corpus and random queries.
	rng := rand.New(rand.NewSource(17))
	queries := make([][]float32, 0, 8)
	for i := 0; i < 4; i++ {
		p := &f.cat.Products[i*7%len(f.cat.Products)]
		queries = append(queries, f.feats[p.ImageURLs[0]])
	}
	for i := 0; i < 4; i++ {
		q := make([]float32, testDim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		queries = append(queries, q)
	}
	for qi, q := range queries {
		req := &core.SearchRequest{Feature: q, TopK: 10, NProbe: 8, Category: -1}
		want, err := next.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		got := callSearch(t, s.Addr(), req)
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("query %d: %d hits via push, %d from source", qi, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			w, g := want.Hits[i], got.Hits[i]
			if w.ProductID != g.ProductID || w.URL != g.URL || w.Dist != g.Dist {
				t.Fatalf("query %d hit %d diverged: pushed %+v, source %+v", qi, i, g, w)
			}
		}
	}
}

// TestPushAbortLeavesServingShard aborts a transfer mid-stream and checks
// the searcher keeps serving its old shard with no session left behind.
func TestPushAbortLeavesServingShard(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var snap bytes.Buffer
	if err := f.shard.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	c, err := rpc.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	resp, err := c.Call(ctx, search.MethodLoadIndexBegin, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rpc.DecodeStreamSession(resp)
	if err != nil {
		t.Fatal(err)
	}
	// One genuine chunk of a real snapshot, then abandon the transfer.
	if _, err := c.Call(ctx, search.MethodLoadIndexChunk,
		rpc.EncodeStreamChunk(id, 0, snap.Bytes()[:1024])); err != nil {
		t.Fatal(err)
	}
	if s.LoadSessions() != 1 {
		t.Fatal("streaming session not tracked")
	}
	if _, err := c.Call(ctx, search.MethodLoadIndexAbort, rpc.EncodeStreamSession(id)); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if got := s.LoadSessions(); got != 0 {
		t.Fatalf("LoadSessions = %d after abort, want 0", got)
	}
	if got := s.SnapshotLoads(); got != 0 {
		t.Fatalf("SnapshotLoads = %d after abort, want 0", got)
	}
	// The old shard still serves.
	url := f.cat.Products[0].ImageURLs[0]
	resp2 := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1})
	if len(resp2.Hits) == 0 || resp2.Hits[0].URL != url {
		t.Fatalf("serving shard disturbed by aborted push: %+v", resp2.Hits)
	}
}

// TestPushDisconnectReapedByIdleTimeout: a pusher that dies mid-stream
// (connection drop, no abort) must be reaped by the idle timeout without
// disturbing the serving shard.
func TestPushDisconnectReapedByIdleTimeout(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard, LoadIdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var snap bytes.Buffer
	if err := f.shard.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	c, err := rpc.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	resp, err := c.Call(ctx, search.MethodLoadIndexBegin, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rpc.DecodeStreamSession(resp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(ctx, search.MethodLoadIndexChunk,
		rpc.EncodeStreamChunk(id, 0, snap.Bytes()[:512])); err != nil {
		t.Fatal(err)
	}
	c.Close() // pusher vanishes mid-stream

	deadline := time.Now().Add(5 * time.Second)
	for s.LoadSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned session never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	url := f.cat.Products[0].ImageURLs[0]
	got := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1})
	if len(got.Hits) == 0 || got.Hits[0].URL != url {
		t.Fatalf("serving shard disturbed by abandoned push: %+v", got.Hits)
	}
}

// TestPushChunkSequenceViolation: a sequence number beyond the pipeline
// reorder window kills the session and never touches the serving shard.
// (Sequence numbers within the window are buffered for in-order delivery,
// so only an out-of-window chunk is a violation now.)
func TestPushChunkSequenceViolation(t *testing.T) {
	f := newFixture(t, 5)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := rpc.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	resp, err := c.Call(ctx, search.MethodLoadIndexBegin, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rpc.DecodeStreamSession(resp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(ctx, search.MethodLoadIndexChunk,
		rpc.EncodeStreamChunk(id, rpc.StreamReorderWindow+1, []byte("out of order"))); err == nil {
		t.Fatal("out-of-order chunk accepted")
	}
	if got := s.LoadSessions(); got != 0 {
		t.Fatalf("LoadSessions = %d after sequence violation, want 0", got)
	}
	url := f.cat.Products[0].ImageURLs[0]
	got := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1})
	if len(got.Hits) == 0 {
		t.Fatal("index lost after rejected stream")
	}
}

// TestPushSnapshotRejectsGarbage: corrupt snapshot payloads must be
// rejected without disturbing the serving index.
func TestPushSnapshotRejectsGarbage(t *testing.T) {
	f := newFixture(t, 5)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := rpc.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), search.MethodLoadIndex, []byte("garbage snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	// The original index still serves.
	url := f.cat.Products[0].ImageURLs[0]
	resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1})
	if len(resp.Hits) == 0 {
		t.Fatal("index lost after rejected push")
	}
}

// TestPushSnapshotPQMultiChunk: a PQ-enabled snapshot — quantizer, code
// matrix and covered offset — must round-trip through the chunked
// streaming push path and serve the ADC scan on the receiving searcher,
// even though the receiver's original shard never had a quantizer.
func TestPushSnapshotPQMultiChunk(t *testing.T) {
	f := newFixture(t, 40)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	next, err := index.New(index.Config{Dim: testDim, NLists: 8, DefaultNProbe: 8, PQSubvectors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := next.SetCodebook(f.shard.Codebook()); err != nil {
		t.Fatal(err)
	}
	var train []float32
	for _, feat := range f.feats {
		train = append(train, feat...)
	}
	if err := next.TrainPQ(train, 3); err != nil {
		t.Fatal(err)
	}
	for i := range f.cat.Products {
		p := &f.cat.Products[i]
		for _, url := range p.ImageURLs {
			if _, _, err := next.Insert(p.Attrs(url), f.feats[url]); err != nil {
				t.Fatal(err)
			}
		}
	}
	next.SetCoveredOffset(123)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// A 4 KiB chunk forces a long multi-chunk session through the
	// pipelined sender.
	if err := PushSnapshotWith(ctx, s.Addr(), next, PushOptions{ChunkSize: 4 << 10}); err != nil {
		t.Fatalf("PushSnapshotWith: %v", err)
	}
	got := s.Shard()
	if !got.PQEnabled() {
		t.Fatal("pushed PQ snapshot installed without its quantizer")
	}
	if off := got.CoveredOffset(); off != 123 {
		t.Fatalf("covered offset %d, want 123", off)
	}
	if st := got.Stats(); st.PQCodes != st.Images || st.Images == 0 {
		t.Fatalf("pushed shard has %d codes for %d images", st.PQCodes, st.Images)
	}
	// The ADC path agrees with the source shard on queries.
	for i := 0; i < 5; i++ {
		url := f.cat.Products[i].ImageURLs[0]
		want, err := next.Search(&core.SearchRequest{Feature: f.feats[url], TopK: 5, NProbe: 8, Category: -1})
		if err != nil {
			t.Fatal(err)
		}
		resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 5, NProbe: 8, Category: -1})
		if len(resp.Hits) != len(want.Hits) {
			t.Fatalf("query %d: %d hits, want %d", i, len(resp.Hits), len(want.Hits))
		}
		for j := range want.Hits {
			if resp.Hits[j].Image.Local != want.Hits[j].Image.Local {
				t.Fatalf("query %d hit %d: image %d, want %d", i, j, resp.Hits[j].Image.Local, want.Hits[j].Image.Local)
			}
		}
	}
}

// TestPushSnapshot4BitMultiChunk: a 4-bit fast-scan snapshot (v3 layout
// with packed per-list code blocks) must round-trip through the chunked
// streaming push and serve the blocked ADC scan on the receiver.
func TestPushSnapshot4BitMultiChunk(t *testing.T) {
	f := newFixture(t, 40)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	next := pqShard(t, f, 4)
	next.SetCoveredOffset(321)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := PushSnapshotWith(ctx, s.Addr(), next, PushOptions{ChunkSize: 4 << 10}); err != nil {
		t.Fatalf("PushSnapshotWith: %v", err)
	}
	got := s.Shard()
	if !got.PQEnabled() {
		t.Fatal("pushed 4-bit snapshot installed without its quantizer")
	}
	st := got.Stats()
	if st.PQBits != 4 {
		t.Fatalf("pushed shard serves %d-bit codes, want 4", st.PQBits)
	}
	if off := got.CoveredOffset(); off != 321 {
		t.Fatalf("covered offset %d, want 321", off)
	}
	if st.PQCodes != st.Images || st.Images == 0 {
		t.Fatalf("pushed shard has %d codes for %d images", st.PQCodes, st.Images)
	}
	for i := 0; i < 5; i++ {
		url := f.cat.Products[i].ImageURLs[0]
		req := &core.SearchRequest{Feature: f.feats[url], TopK: 5, NProbe: 8, Category: -1}
		want, err := next.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		resp := callSearch(t, s.Addr(), req)
		if len(resp.Hits) != len(want.Hits) {
			t.Fatalf("query %d: %d hits, want %d", i, len(resp.Hits), len(want.Hits))
		}
		for j := range want.Hits {
			if resp.Hits[j].Image.Local != want.Hits[j].Image.Local || resp.Hits[j].Dist != want.Hits[j].Dist {
				t.Fatalf("query %d hit %d: %+v, want %+v", i, j, resp.Hits[j], want.Hits[j])
			}
		}
	}
}
