package searcher

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/index"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// TestPushSnapshotSwapsIndex covers the distribution step of the weekly
// full indexing cycle: a freshly built shard is pushed to a running
// searcher over the network and served with zero downtime.
func TestPushSnapshotSwapsIndex(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Build a replacement index holding a single marker product.
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := next.SetCodebook(f.shard.Codebook()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	mf := make([]float32, testDim)
	for i := range mf {
		mf[i] = float32(rng.NormFloat64())
	}
	if _, _, err := next.Insert(core.Attrs{ProductID: 424242, URL: "jfs://pushed.jpg"}, mf); err != nil {
		t.Fatal(err)
	}

	// Queries keep flowing while the new index is pushed.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	oldURL := f.cat.Products[0].ImageURLs[0]
	go func() {
		defer wg.Done()
		c, err := rpc.Dial(s.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Call(context.Background(), search.MethodSearch,
				core.EncodeSearchRequest(&core.SearchRequest{Feature: f.feats[oldURL], TopK: 1, NProbe: 8, Category: -1})); err != nil {
				t.Errorf("query during push: %v", err)
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := PushSnapshot(ctx, s.Addr(), next); err != nil {
		t.Fatalf("PushSnapshot: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The pushed index is live.
	resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: mf, TopK: 1, NProbe: 8, Category: -1})
	if len(resp.Hits) != 1 || resp.Hits[0].ProductID != 424242 {
		t.Fatalf("pushed index not serving: %+v", resp.Hits)
	}
	// The old corpus is gone (full index replaces, never merges).
	resp = callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[oldURL], TopK: 5, NProbe: 8, Category: -1})
	for _, h := range resp.Hits {
		if h.URL == oldURL {
			t.Fatalf("old index leaked through the swap: %+v", h)
		}
	}
}

// TestPushSnapshotRejectsGarbage: corrupt snapshot payloads must be
// rejected without disturbing the serving index.
func TestPushSnapshotRejectsGarbage(t *testing.T) {
	f := newFixture(t, 5)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := rpc.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), search.MethodLoadIndex, []byte("garbage snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	// The original index still serves.
	url := f.cat.Products[0].ImageURLs[0]
	resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1})
	if len(resp.Hits) == 0 {
		t.Fatal("index lost after rejected push")
	}
}
