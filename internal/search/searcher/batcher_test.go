package searcher

import (
	"sync"
	"testing"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/index"
)

// pqShard builds a PQ-enabled shard over the fixture's corpus at the
// requested bit width.
func pqShard(t *testing.T, f *fixture, bits int) *index.Shard {
	t.Helper()
	s, err := index.New(index.Config{
		Dim: testDim, NLists: 8, DefaultNProbe: 8, PQSubvectors: 4, PQBits: bits,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetCodebook(f.shard.Codebook()); err != nil {
		t.Fatal(err)
	}
	var train []float32
	for _, feat := range f.feats {
		train = append(train, feat...)
	}
	if err := s.TrainPQ(train, 3); err != nil {
		t.Fatal(err)
	}
	for i := range f.cat.Products {
		p := &f.cat.Products[i]
		for _, url := range p.ImageURLs {
			if _, _, err := s.Insert(p.Attrs(url), f.feats[url]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// TestBatchedSearchOverRPC: a searcher with a batch window must answer
// concurrent clients with exactly the responses an unbatched searcher
// gives, while actually collecting multi-query batches.
func TestBatchedSearchOverRPC(t *testing.T) {
	f := newFixture(t, 40)
	shard := pqShard(t, f, 4)
	batched, err := New(Config{
		Shard:           shard,
		BatchWindow:     5 * time.Millisecond,
		BatchMaxQueries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	var reqs []*core.SearchRequest
	for i := range f.cat.Products {
		url := f.cat.Products[i].ImageURLs[0]
		reqs = append(reqs, &core.SearchRequest{Feature: f.feats[url], TopK: 5, NProbe: 8, Category: -1})
		if len(reqs) == 16 {
			break
		}
	}

	// Ground truth from the shard directly (unbatched path).
	want := make([]*core.SearchResponse, len(reqs))
	for i, req := range reqs {
		w, err := shard.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	// Fire all requests concurrently so the collector actually forms
	// batches, several rounds to cover leader/follower role churn.
	for round := 0; round < 3; round++ {
		got := make([]*core.SearchResponse, len(reqs))
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = callSearch(t, batched.Addr(), reqs[i])
			}(i)
		}
		wg.Wait()
		for i := range reqs {
			if len(got[i].Hits) != len(want[i].Hits) {
				t.Fatalf("round %d query %d: %d hits, want %d", round, i, len(got[i].Hits), len(want[i].Hits))
			}
			if got[i].Scanned != want[i].Scanned || got[i].Probed != want[i].Probed {
				t.Fatalf("round %d query %d: scanned/probed %d/%d, want %d/%d",
					round, i, got[i].Scanned, got[i].Probed, want[i].Scanned, want[i].Probed)
			}
			for j := range want[i].Hits {
				g, w := got[i].Hits[j], want[i].Hits[j]
				if g.Image.Local != w.Image.Local || g.Dist != w.Dist {
					t.Fatalf("round %d query %d hit %d: (%d %g), want (%d %g)",
						round, i, j, g.Image.Local, g.Dist, w.Image.Local, w.Dist)
				}
			}
		}
	}
}

// TestBatcherLoneQuery: with no concurrency a batched searcher still
// answers (as a single-query batch) after waiting out its window.
func TestBatcherLoneQuery(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := f.cat.Products[0].ImageURLs[0]
	resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1})
	if len(resp.Hits) == 0 {
		t.Fatal("lone query through the batcher returned nothing")
	}
}

// TestBatcherFullWindowExecutesEarly: a window that fills to
// BatchMaxQueries must execute well before a long BatchWindow elapses.
func TestBatcherFullWindowExecutesEarly(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{
		Shard:           f.shard,
		BatchWindow:     30 * time.Second, // would time the test out if waited
		BatchMaxQueries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := f.cat.Products[0].ImageURLs[0]
	req := &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			callSearch(t, s.Addr(), req)
		}()
	}
	wg.Wait()
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("full batch took %v; the fill signal did not fire", e)
	}
}
