package searcher

import (
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cnn"
	"jdvs/internal/core"
	"jdvs/internal/featuredb"
	"jdvs/internal/imagestore"
	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

const testDim = 16

type fixture struct {
	queue  *mq.Queue
	images *imagestore.Store
	res    *indexer.Resolver
	cat    *catalog.Catalog
	shard  *index.Shard
	feats  map[string][]float32 // url → feature for all indexed images
}

func newFixture(t *testing.T, products int) *fixture {
	t.Helper()
	f := &fixture{
		queue:  mq.New(),
		images: imagestore.New(),
		feats:  make(map[string][]float32),
	}
	t.Cleanup(f.queue.Close)
	if err := f.queue.CreateTopic(indexer.UpdatesTopic, 1); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Generate(catalog.Config{Products: products, Categories: 4, Seed: 19}, f.images)
	if err != nil {
		t.Fatal(err)
	}
	f.cat = cat
	f.res = &indexer.Resolver{
		DB:        featuredb.New(),
		Images:    f.images,
		Extractor: cnn.New(cnn.Config{Dim: testDim, Seed: 7}),
	}
	shard, err := index.New(index.Config{Dim: testDim, NLists: 8, DefaultNProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	var train []float32
	for i := range cat.Products {
		p := &cat.Products[i]
		for _, url := range p.ImageURLs {
			e, _, err := f.res.Resolve(url, p.Attrs(url))
			if err != nil {
				t.Fatal(err)
			}
			f.feats[url] = e.Feature
			train = append(train, e.Feature...)
		}
	}
	if err := shard.Train(train, 1); err != nil {
		t.Fatal(err)
	}
	for i := range cat.Products {
		p := &cat.Products[i]
		for _, url := range p.ImageURLs {
			if _, _, err := shard.Insert(p.Attrs(url), f.feats[url]); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.shard = shard
	return f
}

func callSearch(t *testing.T, addr string, req *core.SearchRequest) *core.SearchResponse {
	t.Helper()
	c, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodSearch, core.EncodeSearchRequest(req))
	if err != nil {
		t.Fatalf("search call: %v", err)
	}
	resp, err := core.DecodeSearchResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSearchOverRPC(t *testing.T) {
	f := newFixture(t, 30)
	s, err := New(Config{Partition: 5, Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := &f.cat.Products[0]
	url := p.ImageURLs[0]
	resp := callSearch(t, s.Addr(), &core.SearchRequest{
		Feature: f.feats[url], TopK: 3, NProbe: 8, Category: -1,
	})
	if len(resp.Hits) == 0 {
		t.Fatal("no hits")
	}
	if resp.Hits[0].ProductID != p.ID || resp.Hits[0].Dist != 0 {
		t.Fatalf("self query hit: %+v", resp.Hits[0])
	}
	if resp.Hits[0].Image.Partition != 5 {
		t.Fatalf("partition not stamped: %+v", resp.Hits[0].Image)
	}
}

// TestSearchWorkersOverride checks the node-level knob is applied to the
// initial shard and re-applied across hot swaps.
func TestSearchWorkersOverride(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Partition: 1, Shard: f.shard, SearchWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Shard().SearchWorkers(); got != 3 {
		t.Fatalf("initial shard SearchWorkers = %d, want 3", got)
	}
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	next.SetSearchWorkers(1)
	s.SwapShard(next)
	if got := s.Shard().SearchWorkers(); got != 3 {
		t.Fatalf("swapped shard SearchWorkers = %d, want 3", got)
	}
}

func TestRealtimeLoopAppliesUpdates(t *testing.T) {
	f := newFixture(t, 10)
	var mu sync.Mutex
	applied := map[string]int{}
	s, err := New(Config{
		Shard:    f.shard,
		Resolver: f.res,
		Queue:    f.queue,
		OnApplied: func(u *msg.ProductUpdate, kind string, reused bool, lat time.Duration) {
			mu.Lock()
			applied[kind]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := &f.cat.Products[1]
	del := &msg.ProductUpdate{
		Type: msg.TypeRemoveProduct, ProductID: p.ID,
		ImageURLs: p.ImageURLs, EventTimeNanos: time.Now().UnixNano(),
	}
	if _, err := indexer.RouteUpdate(f.queue, del); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Applied() >= int64(len(p.ImageURLs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("real-time loop did not apply the deletion")
		}
		time.Sleep(time.Millisecond)
	}
	// The deletion is reflected in search through the same node.
	url := p.ImageURLs[0]
	resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 10, NProbe: 8, Category: -1})
	for _, h := range resp.Hits {
		if h.ProductID == p.ID {
			t.Fatal("deleted product still searchable")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if applied["deletion"] != len(p.ImageURLs) {
		t.Fatalf("OnApplied deletions = %d, want %d", applied["deletion"], len(p.ImageURLs))
	}
}

func TestSwapShardZeroDowntime(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Build a replacement shard containing a single marker product.
	next, err := index.New(index.Config{Dim: testDim, NLists: 8, DefaultNProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := next.SetCodebook(f.shard.Codebook()); err != nil {
		t.Fatal(err)
	}
	marker := core.Attrs{ProductID: 999999, URL: "jfs://marker.jpg"}
	rng := rand.New(rand.NewSource(1))
	mf := make([]float32, testDim)
	for i := range mf {
		mf[i] = float32(rng.NormFloat64())
	}
	if _, _, err := next.Insert(marker, mf); err != nil {
		t.Fatal(err)
	}

	// Queries racing with the swap must always succeed against one index or
	// the other.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	url := f.cat.Products[0].ImageURLs[0]
	go func() {
		defer wg.Done()
		c, err := rpc.Dial(s.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := c.Call(context.Background(), search.MethodSearch,
				core.EncodeSearchRequest(&core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1}))
			if err != nil {
				t.Errorf("query failed during swap: %v", err)
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	s.SwapShard(next)
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: mf, TopK: 1, NProbe: 8, Category: -1})
	if len(resp.Hits) != 1 || resp.Hits[0].ProductID != 999999 {
		t.Fatalf("post-swap query: %+v", resp.Hits)
	}
}

func TestStatsEndpoint(t *testing.T) {
	f := newFixture(t, 5)
	s, err := New(Config{Partition: 2, Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := f.cat.Products[0].ImageURLs[0]
	callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 1, Category: -1})

	c, err := rpc.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if st.Partition != 2 || st.Searches != 1 || st.Index.Images == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil shard accepted")
	}
	f := newFixture(t, 2)
	if _, err := New(Config{Shard: f.shard, Queue: f.queue}); err == nil {
		t.Fatal("queue without resolver accepted")
	}
}

func TestPingAndDoubleClose(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := Ping(ctx, s.Addr()); err != nil {
		t.Fatalf("ping: %v", err)
	}
	s.Close()
	s.Close() // idempotent
	if err := Ping(ctx, s.Addr()); err == nil {
		t.Fatal("ping succeeded after close")
	}
}

func TestPoisonMessageSkipped(t *testing.T) {
	f := newFixture(t, 3)
	s, err := New(Config{Shard: f.shard, Resolver: f.res, Queue: f.queue})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Garbage payload straight into the partition.
	if _, err := f.queue.Produce(indexer.UpdatesTopic, 0, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	// Then a valid deletion: the loop must survive the poison message and
	// apply it.
	p := &f.cat.Products[0]
	if _, err := indexer.RouteUpdate(f.queue, &msg.ProductUpdate{
		Type: msg.TypeRemoveProduct, ProductID: p.ID, ImageURLs: p.ImageURLs[:1],
		EventTimeNanos: time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Applied() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("loop died on poison message")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDroppedAndApplyErrorsCounted: poison messages and indexer failures
// must leave a trace instead of vanishing silently.
func TestDroppedAndApplyErrorsCounted(t *testing.T) {
	f := newFixture(t, 3)
	s, err := New(Config{Shard: f.shard, Resolver: f.res, Queue: f.queue})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// An undecodable payload: dropped.
	if _, err := f.queue.Produce(indexer.UpdatesTopic, 0, []byte("not an update")); err != nil {
		t.Fatal(err)
	}
	// A well-formed addition whose image no store can resolve: apply error.
	if _, err := indexer.RouteUpdate(f.queue, &msg.ProductUpdate{
		Type:           msg.TypeAddProduct,
		ProductID:      987654,
		ImageURLs:      []string{"jfs://no-such-image.jpg"},
		EventTimeNanos: time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}
	// A valid deletion afterwards proves the loop survived both.
	p := &f.cat.Products[0]
	if _, err := indexer.RouteUpdate(f.queue, &msg.ProductUpdate{
		Type: msg.TypeRemoveProduct, ProductID: p.ID, ImageURLs: p.ImageURLs[:1],
		EventTimeNanos: time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Dropped() < 1 || s.ApplyErrors() < 1 || s.Applied() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("counters stalled: dropped=%d applyErrors=%d applied=%d",
				s.Dropped(), s.ApplyErrors(), s.Applied())
		}
		time.Sleep(time.Millisecond)
	}

	// Both surface in the stats payload.
	c, err := rpc.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 || st.ApplyErrors != 1 {
		t.Fatalf("stats = dropped %d / apply_errors %d, want 1/1", st.Dropped, st.ApplyErrors)
	}
}

func TestManySearchersShareNothing(t *testing.T) {
	f := newFixture(t, 6)
	var nodes []*Searcher
	for i := 0; i < 4; i++ {
		s, err := New(Config{Partition: core.PartitionID(i), Shard: f.shard})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, s)
	}
	defer func() {
		for _, s := range nodes {
			s.Close()
		}
	}()
	addrSeen := map[string]bool{}
	for _, s := range nodes {
		if addrSeen[s.Addr()] {
			t.Fatalf("duplicate address %s", s.Addr())
		}
		addrSeen[s.Addr()] = true
	}
	url := f.cat.Products[0].ImageURLs[0]
	for i, s := range nodes {
		resp := callSearch(t, s.Addr(), &core.SearchRequest{Feature: f.feats[url], TopK: 1, NProbe: 8, Category: -1})
		if len(resp.Hits) == 0 || resp.Hits[0].Image.Partition != core.PartitionID(i) {
			t.Fatalf("node %d: %+v", i, resp.Hits)
		}
	}
}
