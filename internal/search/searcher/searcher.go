// Package searcher implements the leaf tier of Fig. 10: each searcher owns
// one index partition, serves similarity scans over it, and tails its
// message-queue partition to apply real-time index updates (§2.3, Fig. 4)
// concurrently with searches.
//
// # Snapshot distribution
//
// The periodic full indexing cycle (§2.2) ends by pushing each partition's
// fresh index to its searchers. Two wire paths exist:
//
//   - search.MethodLoadIndex: the whole snapshot as one frame. Only viable
//     while the snapshot fits under rpc.MaxFrame; kept for small shards and
//     back compatibility.
//   - search.LoadIndexStream (MethodLoadIndexBegin/Chunk/Commit/Abort): a
//     chunked session (rpc stream codec). The receiver feeds verified
//     chunks straight into index.LoadSnapshot through a pipe, so a shard is
//     materialised incrementally with O(chunk) transfer buffering; the
//     serving shard is hot-swapped only on a clean, totals-verified commit.
//     An abort — explicit, or implicit when the session idles past
//     Config.LoadIdleTimeout — discards the partial shard and leaves the
//     serving index untouched.
//
// PushSnapshot picks between the two automatically: it serialises straight
// into the chunked sender and falls back to the single frame when the
// whole snapshot fit inside one chunk.
package searcher

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/metrics"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// AppliedFunc observes every applied real-time update: the decoded event,
// the operation kind ("addition", "deletion", "update"), whether features
// or records were reused, and the end-to-end latency from enqueue to
// applied. Harnesses use it to build Table 1 and Fig. 11.
type AppliedFunc func(u *msg.ProductUpdate, kind string, reused bool, latency time.Duration)

// Config assembles a searcher node.
type Config struct {
	// Partition is this searcher's partition number.
	Partition core.PartitionID
	// Shard is the partition's index (already trained/loaded).
	Shard *index.Shard
	// Resolver resolves image URLs to features for real-time insertions.
	// Required when Queue is set.
	Resolver *indexer.Resolver
	// Queue, when non-nil, enables the real-time indexing loop consuming
	// the partition's updates.
	Queue *mq.Queue
	// StartOffset is where the real-time consumer begins (normally the
	// offset the last full index covered).
	StartOffset int64
	// Addr is the listen address (":0" for an ephemeral port).
	Addr string
	// OnApplied, if set, observes applied updates.
	OnApplied AppliedFunc
	// SearchWorkers, when > 0, overrides the shard's intra-query scan
	// parallelism (index.Config.SearchWorkers) on the initial shard and on
	// every shard subsequently installed by snapshot push or SwapShard.
	SearchWorkers int
	// LoadIdleTimeout reaps an inbound snapshot-streaming session whose
	// sender stalls between chunks (default rpc.DefaultStreamIdleTimeout).
	// A reaped session never disturbs the serving shard.
	LoadIdleTimeout time.Duration
	// BatchWindow, when > 0, enables batched query execution: concurrent
	// searches arriving within the window are collected and executed in
	// one index.SearchBatch pass over the shard, amortising the inverted-
	// list traversal and (on the 4-bit fast-scan path) scoring each code
	// block for every batched query while it is cache-resident. A lone
	// query still waits out the window, so this trades up to BatchWindow
	// of added latency for closed-loop throughput under concurrency.
	// Per-query results are identical to unbatched execution. Zero
	// disables batching (the default).
	BatchWindow time.Duration
	// BatchMaxQueries caps one batch (default 16); a window that fills up
	// executes immediately instead of waiting out BatchWindow.
	BatchMaxQueries int
	// SearchDelay and SearchDelayFraction inject artificial latency into
	// this replica's search handler — the fault injector behind broker
	// hedging demos and benchmarks (jdvs-bench -slow-replica-ms). When
	// both are set, roughly SearchDelayFraction of searches (deterministic,
	// counter-based: every round(1/fraction)-th request) sleep SearchDelay
	// before answering. Zero disables.
	SearchDelay         time.Duration
	SearchDelayFraction float64
}

// Searcher is a running searcher node.
type Searcher struct {
	partition     core.PartitionID
	shard         atomic.Pointer[index.Shard]
	res           *indexer.Resolver
	srv           *rpc.Server
	queue         *mq.Queue
	startOff      int64
	onApplied     AppliedFunc
	searchWorkers int

	loads *rpc.StreamServer

	// batch collects concurrent searches into SearchBatch windows when
	// Config.BatchWindow is set; nil means every search runs immediately.
	batch *batcher

	// Fault injection: every delayEvery-th search sleeps delay.
	delay      time.Duration
	delayEvery int64
	delaySeq   atomic.Int64

	rtLatency     metrics.Histogram
	applied       metrics.Counter
	searches      metrics.Counter
	dropped       metrics.Counter // undecodable (poison) queue messages
	applyErrors   metrics.Counter // decoded updates indexer.Apply rejected
	snapshotLoads metrics.Counter // snapshots installed by push (both paths)
	offsetSkips   metrics.Counter // queue messages skipped as snapshot-covered

	// skipTo is the queue offset covered by the serving shard: the
	// real-time consumer drops messages below it instead of re-applying
	// them idempotently. resyncTo is a one-shot reposition request raised
	// by SwapShard (-1 when none): forward of the consumer it skips the
	// snapshot-covered span, behind the consumer it rewinds so the gap the
	// consumer applied to the pre-swap shard is replayed onto the fresh
	// one (updates are idempotent) instead of being lost.
	skipTo   atomic.Int64
	resyncTo atomic.Int64

	// appliedOff is the partition's applied-offset watermark: every queue
	// offset below it is reflected in the serving shard, whether applied by
	// the real-time loop or covered by an installed snapshot. Monotonic
	// (CAS-max): a consumer rewind replays already-reflected updates, so
	// the watermark never moves back. Brokers read it from Stats to bound
	// result-cache staleness.
	appliedOff atomic.Int64

	addr   string
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New builds and starts a searcher (RPC serving plus, if configured, the
// real-time indexing loop).
func New(cfg Config) (*Searcher, error) {
	if cfg.Shard == nil {
		return nil, errors.New("searcher: Shard is required")
	}
	if cfg.Queue != nil && cfg.Resolver == nil {
		return nil, errors.New("searcher: Resolver is required with Queue")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := &Searcher{
		partition:     cfg.Partition,
		res:           cfg.Resolver,
		queue:         cfg.Queue,
		startOff:      cfg.StartOffset,
		onApplied:     cfg.OnApplied,
		searchWorkers: cfg.SearchWorkers,
		done:          make(chan struct{}),
	}
	s.resyncTo.Store(-1)
	s.appliedOff.Store(cfg.StartOffset)
	if cfg.SearchDelay > 0 && cfg.SearchDelayFraction > 0 {
		s.delay = cfg.SearchDelay
		frac := cfg.SearchDelayFraction
		if frac > 1 {
			frac = 1
		}
		s.delayEvery = int64(math.Round(1 / frac))
		if s.delayEvery < 1 {
			s.delayEvery = 1
		}
	}
	if s.searchWorkers > 0 {
		cfg.Shard.SetSearchWorkers(s.searchWorkers)
	}
	if cfg.BatchWindow > 0 {
		s.batch = newBatcher(s, cfg.BatchWindow, cfg.BatchMaxQueries)
	}
	s.shard.Store(cfg.Shard)

	s.srv = rpc.NewServer()
	s.srv.Handle(search.MethodSearch, s.handleSearch)
	s.srv.Handle(search.MethodStats, s.handleStats)
	s.srv.Handle(search.MethodLoadIndex, s.handleLoadIndex)
	s.srv.Handle(search.MethodPing, func([]byte) ([]byte, error) { return nil, nil })
	s.loads = rpc.NewStreamServer(s.openSnapshotSink, cfg.LoadIdleTimeout, 0)
	s.loads.Register(s.srv, search.LoadIndexStream)
	addr, err := s.srv.Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.addr = addr

	if s.queue != nil {
		consumer, err := s.queue.NewConsumer(indexer.UpdatesTopic, int(s.partition), s.startOff)
		if err != nil {
			s.srv.Close()
			return nil, fmt.Errorf("searcher: attach to queue: %w", err)
		}
		s.wg.Add(1)
		go s.realtimeLoop(consumer)
	}
	return s, nil
}

// Addr returns the searcher's RPC address.
func (s *Searcher) Addr() string { return s.addr }

// Partition returns the partition this searcher owns.
func (s *Searcher) Partition() core.PartitionID { return s.partition }

// Shard returns the currently served shard.
func (s *Searcher) Shard() *index.Shard { return s.shard.Load() }

// SwapShard atomically replaces the served index — the zero-downtime swap
// at the end of a full indexing cycle. In-flight searches finish on the
// old shard; new searches see the new one. A configured SearchWorkers
// override is re-applied so a pushed index keeps the node's parallelism.
// If the incoming shard records the queue offset its build covered, the
// real-time consumer resynchronises to it: a consumer behind the offset
// skips straight past the snapshot-covered span, and a consumer ahead of
// it rewinds to replay the gap it had applied to the outgoing shard —
// otherwise those updates would be missing from the fresh index until the
// next full build.
func (s *Searcher) SwapShard(next *index.Shard) {
	if s.searchWorkers > 0 {
		next.SetSearchWorkers(s.searchWorkers)
	}
	s.shard.Store(next)
	if covered := next.CoveredOffset(); covered > 0 {
		s.skipTo.Store(covered)
		s.resyncTo.Store(covered)
		s.advanceApplied(covered)
	}
}

// advanceApplied raises the applied-offset watermark to off (monotonic).
func (s *Searcher) advanceApplied(off int64) {
	for {
		cur := s.appliedOff.Load()
		if off <= cur || s.appliedOff.CompareAndSwap(cur, off) {
			return
		}
	}
}

// Close stops serving and waits for the real-time loop to drain.
func (s *Searcher) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.done)
	s.wg.Wait()
	s.loads.Close()
	s.srv.Close()
}

func (s *Searcher) handleSearch(payload []byte) ([]byte, error) {
	req, err := core.DecodeSearchRequest(payload)
	if err != nil {
		return nil, err
	}
	if s.delayEvery > 0 && s.delaySeq.Add(1)%s.delayEvery == 0 {
		time.Sleep(s.delay) // injected fault: this replica is slow for this request
	}
	var resp *core.SearchResponse
	if s.batch != nil {
		resp, err = s.batch.do(req)
	} else {
		resp, err = s.shard.Load().Search(req)
	}
	if err != nil {
		return nil, err
	}
	// Stamp our partition into every hit's global reference.
	for i := range resp.Hits {
		resp.Hits[i].Image.Partition = s.partition
	}
	s.searches.Inc()
	return core.EncodeSearchResponse(resp), nil
}

// Stats is the searcher's stats payload (JSON over MethodStats).
type Stats struct {
	Partition core.PartitionID `json:"partition"`
	Index     index.Stats      `json:"index"`
	Searches  int64            `json:"searches"`
	Applied   int64            `json:"applied"`
	// Dropped counts queue messages discarded because they would not
	// decode (poison messages).
	Dropped int64 `json:"dropped"`
	// ApplyErrors counts decoded updates the indexer rejected (e.g. an
	// addition whose image could not be resolved).
	ApplyErrors int64 `json:"apply_errors"`
	// SnapshotLoads counts pushed snapshots installed (single-frame or
	// streamed); LoadSessions is the number of chunked transfers currently
	// in flight.
	SnapshotLoads int64 `json:"snapshot_loads"`
	LoadSessions  int   `json:"load_sessions"`
	// OffsetSkips counts queue messages the real-time consumer skipped
	// because an installed snapshot already covered their offsets.
	OffsetSkips int64 `json:"offset_skips"`
	// AppliedOffset is the partition's applied-offset watermark: every
	// queue offset below it is reflected in the serving shard. Brokers use
	// it to invalidate result-cache entries whose covered shards moved on.
	AppliedOffset int64 `json:"applied_offset"`
	RTAvgMicros   int64 `json:"rt_avg_micros"`
	RTP99Micros   int64 `json:"rt_p99_micros"`
	QueueConsumed bool  `json:"queue_consumed"`
}

func (s *Searcher) handleStats([]byte) ([]byte, error) {
	st := Stats{
		Partition:     s.partition,
		Index:         s.shard.Load().Stats(),
		Searches:      s.searches.Value(),
		Applied:       s.applied.Value(),
		Dropped:       s.dropped.Value(),
		ApplyErrors:   s.applyErrors.Value(),
		SnapshotLoads: s.snapshotLoads.Value(),
		LoadSessions:  s.loads.Sessions(),
		OffsetSkips:   s.offsetSkips.Value(),
		AppliedOffset: s.appliedOff.Load(),
		RTAvgMicros:   s.rtLatency.Mean().Microseconds(),
		RTP99Micros:   s.rtLatency.Percentile(99).Microseconds(),
		QueueConsumed: s.queue != nil,
	}
	return json.Marshal(st)
}

// handleLoadIndex receives a full shard snapshot (the output of the weekly
// full indexing, §2.2) as one frame, materialises it into a fresh shard
// with the same configuration, and hot-swaps it in. In-flight searches
// finish on the old shard; the real-time loop applies subsequent events to
// the new one. Snapshots too large for one frame arrive through the
// chunked session handlers instead (search.LoadIndexStream).
func (s *Searcher) handleLoadIndex(payload []byte) ([]byte, error) {
	fresh, err := index.New(s.shard.Load().Config())
	if err != nil {
		return nil, err
	}
	if err := fresh.LoadSnapshot(bytes.NewReader(payload)); err != nil {
		return nil, fmt.Errorf("searcher: load pushed index: %w", err)
	}
	s.SwapShard(fresh)
	s.snapshotLoads.Inc()
	return nil, nil
}

// snapshotSink materialises one streamed snapshot. Chunk bytes are piped
// into index.LoadSnapshot running in its own goroutine, so the shard is
// decoded incrementally while chunks are still arriving and the receiver
// never buffers more than the in-flight chunk. The fresh shard replaces
// the serving one only on a verified Commit; Abort discards it.
type snapshotSink struct {
	s     *Searcher
	fresh *index.Shard
	pw    *io.PipeWriter
	done  chan error
}

// errSnapshotAborted poisons the pipe when a transfer is torn down.
var errSnapshotAborted = errors.New("searcher: snapshot transfer aborted")

// openSnapshotSink starts a streamed load session (rpc.StreamServer open
// hook).
func (s *Searcher) openSnapshotSink() (rpc.StreamSink, error) {
	fresh, err := index.New(s.shard.Load().Config())
	if err != nil {
		return nil, err
	}
	pr, pw := io.Pipe()
	k := &snapshotSink{s: s, fresh: fresh, pw: pw, done: make(chan error, 1)}
	go func() {
		err := fresh.LoadSnapshot(pr)
		// Stop accepting pipe writes once the decoder is done (success or
		// failure), so a chunk write after a decode error fails fast instead
		// of blocking — and carries the decoder's own error back to the
		// sender when there is one.
		cause := err
		if cause == nil {
			cause = errSnapshotAborted
		}
		pr.CloseWithError(cause)
		k.done <- err
	}()
	return k, nil
}

// Write implements rpc.StreamSink: feed one verified chunk to the decoder.
func (k *snapshotSink) Write(p []byte) (int, error) { return k.pw.Write(p) }

// Commit implements rpc.StreamSink: the stream is complete and
// totals-verified — finish decoding and hot-swap the shard in.
func (k *snapshotSink) Commit() error {
	_ = k.pw.Close()
	if err := <-k.done; err != nil {
		return fmt.Errorf("searcher: load pushed index: %w", err)
	}
	k.s.SwapShard(k.fresh)
	k.s.snapshotLoads.Inc()
	return nil
}

// Abort implements rpc.StreamSink: discard the partial shard; the serving
// shard is untouched.
func (k *snapshotSink) Abort() {
	_ = k.pw.CloseWithError(errSnapshotAborted)
	<-k.done // wait the decoder goroutine out
}

// PushOptions tunes PushSnapshot.
type PushOptions struct {
	// ChunkSize bounds each streamed chunk (default rpc.DefaultChunkSize,
	// capped at rpc.MaxChunkData). Snapshots that fit inside a single chunk
	// skip the session entirely and go over the legacy single-frame
	// MethodLoadIndex.
	ChunkSize int
	// Window is the number of chunk requests kept in flight (default
	// rpc.DefaultStreamWindow; 1 sends one chunk per round trip).
	Window int
}

// PushSnapshot serialises shard and installs it on the searcher at addr —
// the distribution step of the periodic full indexing cycle — with default
// options.
func PushSnapshot(ctx context.Context, addr string, shard *index.Shard) error {
	return PushSnapshotWith(ctx, addr, shard, PushOptions{})
}

// PushSnapshotWith streams shard's snapshot to the searcher at addr in
// checksummed chunks. The snapshot is serialised straight into the chunked
// sender, so peak sender memory is O(chunk size) regardless of shard size;
// snapshots no larger than one chunk fall back to the single-frame path.
// On any mid-stream failure the session is aborted and the receiver keeps
// serving its current shard.
func PushSnapshotWith(ctx context.Context, addr string, shard *index.Shard, opts PushOptions) error {
	c, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	sender := rpc.NewStreamSender(ctx, c, search.LoadIndexStream, opts.ChunkSize)
	if opts.Window > 0 {
		sender.SetWindow(opts.Window)
	}
	if err := shard.WriteSnapshot(sender); err != nil {
		sender.Abort()
		return fmt.Errorf("searcher: push snapshot: %w", err)
	}
	streamed, err := sender.Finish()
	if err != nil {
		// A failed commit already tore the session down server-side; Abort
		// covers failures before the commit was processed.
		sender.Abort()
		return fmt.Errorf("searcher: push snapshot: %w", err)
	}
	if !streamed {
		if _, err := c.Call(ctx, search.MethodLoadIndex, sender.Buffered()); err != nil {
			return fmt.Errorf("searcher: push snapshot: %w", err)
		}
	}
	return nil
}

// realtimeLoop is the Fig. 4 pipeline: receive each update message and
// process it instantly against the live index. A pushed snapshot (see
// SwapShard) resynchronises the consumer to the offset the snapshot
// covers: forward — the covered span is skipped, not re-applied — or
// backward, replaying onto the fresh shard the updates the consumer had
// applied to the old one while the snapshot was being built and pushed.
func (s *Searcher) realtimeLoop(consumer *mq.Consumer) {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		msgs, err := consumer.Poll(256, 50*time.Millisecond)
		//jdvs:nostat Poll errors only when the queue is closed; loop exit, not a dropped update
		if err != nil {
			return // queue closed
		}
		// A resync request raised since the last batch repositions the
		// consumer relative to this batch's start; the per-message skip
		// below handles a target that falls inside the batch.
		if r := s.resyncTo.Swap(-1); r >= 0 {
			base := consumer.Offset() - int64(len(msgs))
			if r < base {
				// The consumer outran the snapshot build: offsets [r, base)
				// reached only the pre-swap shard. Rewind and re-read;
				// re-application is idempotent.
				consumer.SeekTo(r)
				continue
			}
			if r > consumer.Offset() {
				s.offsetSkips.Add(r - consumer.Offset())
				consumer.SeekTo(r)
			}
		}
		// Re-read the watermark: a snapshot may have been installed while
		// Poll was blocked, covering part or all of this batch.
		skip := s.skipTo.Load()
		for _, m := range msgs {
			if m.Offset < skip {
				s.offsetSkips.Inc()
				continue
			}
			s.applyOne(m)
		}
		// Everything up to the consumer's position is now reflected in the
		// serving shard (applied, skipped-as-covered, or dropped).
		s.advanceApplied(consumer.Offset())
	}
}

func (s *Searcher) applyOne(m mq.Message) {
	u, err := msg.Decode(m.Payload)
	if err != nil {
		// Poison message: skip it, but leave a trace — silent drops made
		// queue corruption invisible (Stats.Dropped).
		s.dropped.Inc()
		return
	}
	kind, reused, err := indexer.Apply(s.shard.Load(), s.res, u)
	if err != nil {
		s.applyErrors.Inc()
		return
	}
	lat := time.Since(m.Enqueued)
	s.rtLatency.Record(lat)
	s.applied.Inc()
	if s.onApplied != nil {
		s.onApplied(u, kind, reused, lat)
	}
}

// RTLatency exposes the real-time indexing latency histogram.
func (s *Searcher) RTLatency() *metrics.Histogram { return &s.rtLatency }

// Applied returns the number of updates applied.
func (s *Searcher) Applied() int64 { return s.applied.Value() }

// Dropped returns the number of undecodable queue messages discarded.
func (s *Searcher) Dropped() int64 { return s.dropped.Value() }

// ApplyErrors returns the number of decoded updates the indexer rejected.
func (s *Searcher) ApplyErrors() int64 { return s.applyErrors.Value() }

// SnapshotLoads returns the number of pushed snapshots installed.
func (s *Searcher) SnapshotLoads() int64 { return s.snapshotLoads.Value() }

// OffsetSkips returns the number of queue messages skipped because an
// installed snapshot already covered them.
func (s *Searcher) OffsetSkips() int64 { return s.offsetSkips.Value() }

// LoadSessions returns the number of chunked snapshot transfers in flight.
func (s *Searcher) LoadSessions() int { return s.loads.Sessions() }

// AppliedOffset returns the partition's applied-offset watermark.
func (s *Searcher) AppliedOffset() int64 { return s.appliedOff.Load() }

// Ping checks liveness over the network (used by tests).
func Ping(ctx context.Context, addr string) error {
	c, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Call(ctx, search.MethodPing, nil)
	return err
}
