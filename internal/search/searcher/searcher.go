// Package searcher implements the leaf tier of Fig. 10: each searcher owns
// one index partition, serves similarity scans over it, and tails its
// message-queue partition to apply real-time index updates (§2.3, Fig. 4)
// concurrently with searches.
package searcher

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/metrics"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// AppliedFunc observes every applied real-time update: the decoded event,
// the operation kind ("addition", "deletion", "update"), whether features
// or records were reused, and the end-to-end latency from enqueue to
// applied. Harnesses use it to build Table 1 and Fig. 11.
type AppliedFunc func(u *msg.ProductUpdate, kind string, reused bool, latency time.Duration)

// Config assembles a searcher node.
type Config struct {
	// Partition is this searcher's partition number.
	Partition core.PartitionID
	// Shard is the partition's index (already trained/loaded).
	Shard *index.Shard
	// Resolver resolves image URLs to features for real-time insertions.
	// Required when Queue is set.
	Resolver *indexer.Resolver
	// Queue, when non-nil, enables the real-time indexing loop consuming
	// the partition's updates.
	Queue *mq.Queue
	// StartOffset is where the real-time consumer begins (normally the
	// offset the last full index covered).
	StartOffset int64
	// Addr is the listen address (":0" for an ephemeral port).
	Addr string
	// OnApplied, if set, observes applied updates.
	OnApplied AppliedFunc
	// SearchWorkers, when > 0, overrides the shard's intra-query scan
	// parallelism (index.Config.SearchWorkers) on the initial shard and on
	// every shard subsequently installed by snapshot push or SwapShard.
	SearchWorkers int
}

// Searcher is a running searcher node.
type Searcher struct {
	partition     core.PartitionID
	shard         atomic.Pointer[index.Shard]
	res           *indexer.Resolver
	srv           *rpc.Server
	queue         *mq.Queue
	startOff      int64
	onApplied     AppliedFunc
	searchWorkers int

	rtLatency metrics.Histogram
	applied   metrics.Counter
	searches  metrics.Counter

	addr   string
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New builds and starts a searcher (RPC serving plus, if configured, the
// real-time indexing loop).
func New(cfg Config) (*Searcher, error) {
	if cfg.Shard == nil {
		return nil, errors.New("searcher: Shard is required")
	}
	if cfg.Queue != nil && cfg.Resolver == nil {
		return nil, errors.New("searcher: Resolver is required with Queue")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := &Searcher{
		partition:     cfg.Partition,
		res:           cfg.Resolver,
		queue:         cfg.Queue,
		startOff:      cfg.StartOffset,
		onApplied:     cfg.OnApplied,
		searchWorkers: cfg.SearchWorkers,
		done:          make(chan struct{}),
	}
	if s.searchWorkers > 0 {
		cfg.Shard.SetSearchWorkers(s.searchWorkers)
	}
	s.shard.Store(cfg.Shard)

	s.srv = rpc.NewServer()
	s.srv.Handle(search.MethodSearch, s.handleSearch)
	s.srv.Handle(search.MethodStats, s.handleStats)
	s.srv.Handle(search.MethodLoadIndex, s.handleLoadIndex)
	s.srv.Handle(search.MethodPing, func([]byte) ([]byte, error) { return nil, nil })
	addr, err := s.srv.Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.addr = addr

	if s.queue != nil {
		consumer, err := s.queue.NewConsumer(indexer.UpdatesTopic, int(s.partition), s.startOff)
		if err != nil {
			s.srv.Close()
			return nil, fmt.Errorf("searcher: attach to queue: %w", err)
		}
		s.wg.Add(1)
		go s.realtimeLoop(consumer)
	}
	return s, nil
}

// Addr returns the searcher's RPC address.
func (s *Searcher) Addr() string { return s.addr }

// Partition returns the partition this searcher owns.
func (s *Searcher) Partition() core.PartitionID { return s.partition }

// Shard returns the currently served shard.
func (s *Searcher) Shard() *index.Shard { return s.shard.Load() }

// SwapShard atomically replaces the served index — the zero-downtime swap
// at the end of a full indexing cycle. In-flight searches finish on the
// old shard; new searches see the new one. A configured SearchWorkers
// override is re-applied so a pushed index keeps the node's parallelism.
func (s *Searcher) SwapShard(next *index.Shard) {
	if s.searchWorkers > 0 {
		next.SetSearchWorkers(s.searchWorkers)
	}
	s.shard.Store(next)
}

// Close stops serving and waits for the real-time loop to drain.
func (s *Searcher) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.done)
	s.wg.Wait()
	s.srv.Close()
}

func (s *Searcher) handleSearch(payload []byte) ([]byte, error) {
	req, err := core.DecodeSearchRequest(payload)
	if err != nil {
		return nil, err
	}
	resp, err := s.shard.Load().Search(req)
	if err != nil {
		return nil, err
	}
	// Stamp our partition into every hit's global reference.
	for i := range resp.Hits {
		resp.Hits[i].Image.Partition = s.partition
	}
	s.searches.Inc()
	return core.EncodeSearchResponse(resp), nil
}

// Stats is the searcher's stats payload (JSON over MethodStats).
type Stats struct {
	Partition     core.PartitionID `json:"partition"`
	Index         index.Stats      `json:"index"`
	Searches      int64            `json:"searches"`
	Applied       int64            `json:"applied"`
	RTAvgMicros   int64            `json:"rt_avg_micros"`
	RTP99Micros   int64            `json:"rt_p99_micros"`
	QueueConsumed bool             `json:"queue_consumed"`
}

func (s *Searcher) handleStats([]byte) ([]byte, error) {
	st := Stats{
		Partition:     s.partition,
		Index:         s.shard.Load().Stats(),
		Searches:      s.searches.Value(),
		Applied:       s.applied.Value(),
		RTAvgMicros:   s.rtLatency.Mean().Microseconds(),
		RTP99Micros:   s.rtLatency.Percentile(99).Microseconds(),
		QueueConsumed: s.queue != nil,
	}
	return json.Marshal(st)
}

// handleLoadIndex receives a full shard snapshot (the output of the weekly
// full indexing, §2.2), materialises it into a fresh shard with the same
// configuration, and hot-swaps it in. In-flight searches finish on the old
// shard; the real-time loop applies subsequent events to the new one.
func (s *Searcher) handleLoadIndex(payload []byte) ([]byte, error) {
	fresh, err := index.New(s.shard.Load().Config())
	if err != nil {
		return nil, err
	}
	if err := fresh.LoadSnapshot(bytes.NewReader(payload)); err != nil {
		return nil, fmt.Errorf("searcher: load pushed index: %w", err)
	}
	s.SwapShard(fresh)
	return nil, nil
}

// PushSnapshot serialises shard and installs it on the searcher at addr —
// the distribution step of the periodic full indexing cycle.
func PushSnapshot(ctx context.Context, addr string, shard *index.Shard) error {
	var buf bytes.Buffer
	if err := shard.WriteSnapshot(&buf); err != nil {
		return err
	}
	c, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Call(ctx, search.MethodLoadIndex, buf.Bytes())
	return err
}

// realtimeLoop is the Fig. 4 pipeline: receive each update message and
// process it instantly against the live index.
func (s *Searcher) realtimeLoop(consumer *mq.Consumer) {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		msgs, err := consumer.Poll(256, 50*time.Millisecond)
		if err != nil {
			return // queue closed
		}
		for _, m := range msgs {
			s.applyOne(m)
		}
	}
}

func (s *Searcher) applyOne(m mq.Message) {
	u, err := msg.Decode(m.Payload)
	if err != nil {
		return // poison message: skip (logged via stats in a fuller system)
	}
	kind, reused, err := indexer.Apply(s.shard.Load(), s.res, u)
	if err != nil {
		return
	}
	lat := time.Since(m.Enqueued)
	s.rtLatency.Record(lat)
	s.applied.Inc()
	if s.onApplied != nil {
		s.onApplied(u, kind, reused, lat)
	}
}

// RTLatency exposes the real-time indexing latency histogram.
func (s *Searcher) RTLatency() *metrics.Histogram { return &s.rtLatency }

// Applied returns the number of updates applied.
func (s *Searcher) Applied() int64 { return s.applied.Value() }

// Ping checks liveness over the network (used by tests).
func Ping(ctx context.Context, addr string) error {
	c, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Call(ctx, search.MethodPing, nil)
	return err
}
