package searcher

import (
	"bytes"
	"context"
	"testing"
	"time"

	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
)

// waitApplied polls until the searcher has applied at least n updates.
func waitApplied(t *testing.T, s *Searcher, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Applied() < n {
		if time.Now().After(deadline) {
			t.Fatalf("applied %d, want %d", s.Applied(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPushSnapshotSkipsCoveredOffsets: a pushed snapshot that embeds the
// queue offset it covers must fast-forward the receiving searcher's
// real-time consumer past the replayed messages instead of re-applying
// them one by one.
func TestPushSnapshotSkipsCoveredOffsets(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard, Resolver: f.res, Queue: f.queue})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := &f.cat.Products[0]
	url := p.ImageURLs[0]
	event := func(sales uint32) *msg.ProductUpdate {
		return &msg.ProductUpdate{
			Type:       msg.TypeUpdateAttrs,
			ProductID:  p.ID,
			Category:   p.Category,
			Sales:      sales,
			Praise:     p.Praise,
			PriceCents: p.PriceCents,
			ImageURLs:  []string{url},
		}
	}

	// Phase 1: live events are applied normally (offsets 0..4).
	for i := 0; i < 5; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, s, 5)

	// Phase 2: push a snapshot claiming to cover offsets up to 9. The four
	// events produced next (offsets 5..8) are "already folded into the
	// snapshot" and must be skipped; the one after (offset 9) is live.
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.shard.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := next.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	next.SetCoveredOffset(9)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := PushSnapshot(ctx, s.Addr(), next); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(200+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := indexer.RouteUpdate(f.queue, event(999)); err != nil {
		t.Fatal(err)
	}

	waitApplied(t, s, 6)
	if got := s.OffsetSkips(); got != 4 {
		t.Fatalf("OffsetSkips = %d, want 4", got)
	}
	if got := s.Applied(); got != 6 {
		t.Fatalf("Applied = %d, want 6 (covered events re-applied?)", got)
	}
	// The live event landed: the shard serves its attribute update.
	shard := s.Shard()
	found := false
	for _, id := range shard.ProductImages(p.ID) {
		if a, ok := shard.Attrs(id); ok && a.URL == url && a.Sales == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-covered live event not applied to the pushed shard")
	}
}

// TestSwapShardWatermarkFollowsServingShard: the skip watermark tracks
// the covered offset of whichever shard is serving — including moving
// backwards when an older build is installed, since messages above its
// coverage must be (re)applied to it, not dropped.
func TestSwapShardWatermarkFollowsServingShard(t *testing.T) {
	f := newFixture(t, 5)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clone := func(off int64) *index.Shard {
		next, err := index.New(f.shard.Config())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f.shard.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if err := next.LoadSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		next.SetCoveredOffset(off)
		return next
	}
	for _, off := range []int64{100, 40, 250} {
		s.SwapShard(clone(off))
		if got := s.skipTo.Load(); got != off {
			t.Fatalf("watermark %d after installing covered=%d", got, off)
		}
		if got := s.resyncTo.Load(); got != off {
			t.Fatalf("resync request %d after installing covered=%d", got, off)
		}
	}
}

// TestPushSnapshotRewindsOutrunConsumer: when the real-time consumer has
// run ahead of a snapshot's covered offset — it applied updates to the
// old shard while the new one was being built and pushed — installing the
// snapshot must rewind the consumer so that gap is replayed onto the
// fresh shard rather than silently lost until the next full build.
func TestPushSnapshotRewindsOutrunConsumer(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard, Resolver: f.res, Queue: f.queue})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := &f.cat.Products[0]
	url := p.ImageURLs[0]
	event := func(sales uint32) *msg.ProductUpdate {
		return &msg.ProductUpdate{
			Type:       msg.TypeUpdateAttrs,
			ProductID:  p.ID,
			Category:   p.Category,
			Sales:      sales,
			Praise:     p.Praise,
			PriceCents: p.PriceCents,
			ImageURLs:  []string{url},
		}
	}
	// The consumer applies offsets 0..4 to the serving shard.
	for i := 0; i < 5; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(300+i))); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, s, 5)

	// A snapshot whose build only covered offsets 0..1 arrives: it is
	// missing the updates at offsets 2..4 that the live consumer already
	// applied. The swap must rewind and replay them.
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.shard.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := next.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Regress the marker product's sales so the replay is observable.
	if err := next.UpdateAttrsURL(url, 1, p.Praise, p.PriceCents, p.Category); err != nil {
		t.Fatal(err)
	}
	next.SetCoveredOffset(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := PushSnapshot(ctx, s.Addr(), next); err != nil {
		t.Fatal(err)
	}

	// Offsets 2..4 are replayed onto the fresh shard (idempotently), so
	// applied reaches 5 + 3 and the shard carries the final sales value.
	waitApplied(t, s, 8)
	if got := s.OffsetSkips(); got != 0 {
		t.Fatalf("OffsetSkips = %d during a rewind, want 0", got)
	}
	shard := s.Shard()
	found := false
	for _, id := range shard.ProductImages(p.ID) {
		if a, ok := shard.Attrs(id); ok && a.URL == url && a.Sales == 304 {
			found = true
		}
	}
	if !found {
		t.Fatal("rewound replay did not restore the gap updates on the fresh shard")
	}
}

// startLoopWith hands a hand-built consumer to the searcher's real-time
// loop — the deterministic harness for batch-boundary cases: everything
// produced and every resync raised *before* this call lands on the
// loop's first Poll batch.
func startLoopWith(t *testing.T, s *Searcher, consumer *mq.Consumer) {
	t.Helper()
	s.wg.Add(1)
	go s.realtimeLoop(consumer)
}

// TestResyncAndWatermarkSameBatch: a resyncTo request and the raised
// skipTo watermark from the same SwapShard land on one Poll batch — the
// covered prefix must be skipped with OffsetSkips counting each skipped
// message exactly once (no double count from the seek-time bulk add plus
// the per-message skip), and the uncovered tail applied exactly once.
func TestResyncAndWatermarkSameBatch(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard, Resolver: f.res})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := &f.cat.Products[0]
	url := p.ImageURLs[0]
	event := func(sales uint32) *msg.ProductUpdate {
		return &msg.ProductUpdate{
			Type:       msg.TypeUpdateAttrs,
			ProductID:  p.ID,
			Category:   p.Category,
			Sales:      sales,
			Praise:     p.Praise,
			PriceCents: p.PriceCents,
			ImageURLs:  []string{url},
		}
	}
	// Offsets 0..9 are already enqueued when the loop first polls, so they
	// arrive as one batch.
	for i := 0; i < 10; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	// A snapshot covering offsets [0, 7) is installed before the batch is
	// processed: resyncTo = skipTo = 7 both land on the same batch.
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.shard.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := next.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	next.SetCoveredOffset(7)
	s.SwapShard(next)

	consumer, err := f.queue.NewConsumer(indexer.UpdatesTopic, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	startLoopWith(t, s, consumer)

	waitApplied(t, s, 3)
	if got := s.OffsetSkips(); got != 7 {
		t.Fatalf("OffsetSkips = %d, want 7 (each covered message counted exactly once)", got)
	}
	if got := s.Applied(); got != 3 {
		t.Fatalf("Applied = %d, want 3 (uncovered tail applied exactly once)", got)
	}
	// The tail landed in order: the last event's sales value serves.
	shard := s.Shard()
	found := false
	for _, id := range shard.ProductImages(p.ID) {
		if a, ok := shard.Attrs(id); ok && a.URL == url && a.Sales == 109 {
			found = true
		}
	}
	if !found {
		t.Fatal("tail updates not applied to the swapped shard")
	}
}

// TestResyncBeyondBatchCountsOnce: the resync target lies past the end of
// the polled batch — the batch is fully skipped via the per-message
// watermark and the remaining covered span via the seek-time bulk add;
// together every covered offset counts exactly once, and messages
// arriving later in the covered span are never re-counted or re-applied.
func TestResyncBeyondBatchCountsOnce(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard, Resolver: f.res})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := &f.cat.Products[0]
	url := p.ImageURLs[0]
	event := func(sales uint32) *msg.ProductUpdate {
		return &msg.ProductUpdate{
			Type:       msg.TypeUpdateAttrs,
			ProductID:  p.ID,
			Category:   p.Category,
			Sales:      sales,
			Praise:     p.Praise,
			PriceCents: p.PriceCents,
			ImageURLs:  []string{url},
		}
	}
	// Ten messages exist; the snapshot covers twelve: offsets 10 and 11
	// have not even been produced yet.
	for i := 0; i < 10; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(500+i))); err != nil {
			t.Fatal(err)
		}
	}
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.shard.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := next.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	next.SetCoveredOffset(12)
	s.SwapShard(next)

	consumer, err := f.queue.NewConsumer(indexer.UpdatesTopic, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	startLoopWith(t, s, consumer)

	// The whole batch plus the unproduced remainder of the covered span is
	// skipped: 10 messages + offsets [10, 12) = 12 skips.
	deadline := time.Now().Add(5 * time.Second)
	for s.OffsetSkips() < 12 {
		if time.Now().After(deadline) {
			t.Fatalf("OffsetSkips = %d, want 12", s.OffsetSkips())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Offsets 10 and 11 arrive after the seek; they were skipped at seek
	// time and must not be applied or counted again. Offset 12 is live.
	for i := 0; i < 2; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(600+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := indexer.RouteUpdate(f.queue, event(999)); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, s, 1)
	if got := s.OffsetSkips(); got != 12 {
		t.Fatalf("OffsetSkips = %d, want 12 (covered span double-counted?)", got)
	}
	if got := s.Applied(); got != 1 {
		t.Fatalf("Applied = %d, want 1 (covered messages re-applied?)", got)
	}
}
