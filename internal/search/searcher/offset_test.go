package searcher

import (
	"bytes"
	"context"
	"testing"
	"time"

	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/msg"
)

// waitApplied polls until the searcher has applied at least n updates.
func waitApplied(t *testing.T, s *Searcher, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Applied() < n {
		if time.Now().After(deadline) {
			t.Fatalf("applied %d, want %d", s.Applied(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPushSnapshotSkipsCoveredOffsets: a pushed snapshot that embeds the
// queue offset it covers must fast-forward the receiving searcher's
// real-time consumer past the replayed messages instead of re-applying
// them one by one.
func TestPushSnapshotSkipsCoveredOffsets(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard, Resolver: f.res, Queue: f.queue})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := &f.cat.Products[0]
	url := p.ImageURLs[0]
	event := func(sales uint32) *msg.ProductUpdate {
		return &msg.ProductUpdate{
			Type:       msg.TypeUpdateAttrs,
			ProductID:  p.ID,
			Category:   p.Category,
			Sales:      sales,
			Praise:     p.Praise,
			PriceCents: p.PriceCents,
			ImageURLs:  []string{url},
		}
	}

	// Phase 1: live events are applied normally (offsets 0..4).
	for i := 0; i < 5; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, s, 5)

	// Phase 2: push a snapshot claiming to cover offsets up to 9. The four
	// events produced next (offsets 5..8) are "already folded into the
	// snapshot" and must be skipped; the one after (offset 9) is live.
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.shard.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := next.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	next.SetCoveredOffset(9)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := PushSnapshot(ctx, s.Addr(), next); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(200+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := indexer.RouteUpdate(f.queue, event(999)); err != nil {
		t.Fatal(err)
	}

	waitApplied(t, s, 6)
	if got := s.OffsetSkips(); got != 4 {
		t.Fatalf("OffsetSkips = %d, want 4", got)
	}
	if got := s.Applied(); got != 6 {
		t.Fatalf("Applied = %d, want 6 (covered events re-applied?)", got)
	}
	// The live event landed: the shard serves its attribute update.
	shard := s.Shard()
	found := false
	for _, id := range shard.ProductImages(p.ID) {
		if a, ok := shard.Attrs(id); ok && a.URL == url && a.Sales == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-covered live event not applied to the pushed shard")
	}
}

// TestSwapShardWatermarkFollowsServingShard: the skip watermark tracks
// the covered offset of whichever shard is serving — including moving
// backwards when an older build is installed, since messages above its
// coverage must be (re)applied to it, not dropped.
func TestSwapShardWatermarkFollowsServingShard(t *testing.T) {
	f := newFixture(t, 5)
	s, err := New(Config{Shard: f.shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clone := func(off int64) *index.Shard {
		next, err := index.New(f.shard.Config())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f.shard.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if err := next.LoadSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		next.SetCoveredOffset(off)
		return next
	}
	for _, off := range []int64{100, 40, 250} {
		s.SwapShard(clone(off))
		if got := s.skipTo.Load(); got != off {
			t.Fatalf("watermark %d after installing covered=%d", got, off)
		}
		if got := s.resyncTo.Load(); got != off {
			t.Fatalf("resync request %d after installing covered=%d", got, off)
		}
	}
}

// TestPushSnapshotRewindsOutrunConsumer: when the real-time consumer has
// run ahead of a snapshot's covered offset — it applied updates to the
// old shard while the new one was being built and pushed — installing the
// snapshot must rewind the consumer so that gap is replayed onto the
// fresh shard rather than silently lost until the next full build.
func TestPushSnapshotRewindsOutrunConsumer(t *testing.T) {
	f := newFixture(t, 10)
	s, err := New(Config{Shard: f.shard, Resolver: f.res, Queue: f.queue})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := &f.cat.Products[0]
	url := p.ImageURLs[0]
	event := func(sales uint32) *msg.ProductUpdate {
		return &msg.ProductUpdate{
			Type:       msg.TypeUpdateAttrs,
			ProductID:  p.ID,
			Category:   p.Category,
			Sales:      sales,
			Praise:     p.Praise,
			PriceCents: p.PriceCents,
			ImageURLs:  []string{url},
		}
	}
	// The consumer applies offsets 0..4 to the serving shard.
	for i := 0; i < 5; i++ {
		if _, err := indexer.RouteUpdate(f.queue, event(uint32(300+i))); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, s, 5)

	// A snapshot whose build only covered offsets 0..1 arrives: it is
	// missing the updates at offsets 2..4 that the live consumer already
	// applied. The swap must rewind and replay them.
	next, err := index.New(f.shard.Config())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.shard.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := next.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Regress the marker product's sales so the replay is observable.
	if err := next.UpdateAttrsURL(url, 1, p.Praise, p.PriceCents, p.Category); err != nil {
		t.Fatal(err)
	}
	next.SetCoveredOffset(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := PushSnapshot(ctx, s.Addr(), next); err != nil {
		t.Fatal(err)
	}

	// Offsets 2..4 are replayed onto the fresh shard (idempotently), so
	// applied reaches 5 + 3 and the shard carries the final sales value.
	waitApplied(t, s, 8)
	if got := s.OffsetSkips(); got != 0 {
		t.Fatalf("OffsetSkips = %d during a rewind, want 0", got)
	}
	shard := s.Shard()
	found := false
	for _, id := range shard.ProductImages(p.ID) {
		if a, ok := shard.Attrs(id); ok && a.URL == url && a.Sales == 304 {
			found = true
		}
	}
	if !found {
		t.Fatal("rewound replay did not restore the gap updates on the fresh shard")
	}
}
