package searcher

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"jdvs/internal/core"
	"jdvs/internal/index"
)

// benchShard builds a synthetic shard of the given size without the
// catalog machinery, so push throughput dominates the benchmark.
func benchShard(b *testing.B, images, dim int) *index.Shard {
	b.Helper()
	s, err := index.New(index.Config{Dim: dim, NLists: 32, DefaultNProbe: 8})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	train := make([]float32, dim*512)
	for i := range train {
		train[i] = float32(rng.NormFloat64())
	}
	if err := s.Train(train, 1); err != nil {
		b.Fatal(err)
	}
	f := make([]float32, dim)
	for i := 0; i < images; i++ {
		for j := range f {
			f[j] = float32(rng.NormFloat64())
		}
		attrs := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://bench/%d.jpg", i)}
		if _, _, err := s.Insert(attrs, f); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkPushSnapshot measures full-index distribution throughput per
// chunk size, including the single-frame fallback (a chunk size larger
// than the snapshot).
func BenchmarkPushSnapshot(b *testing.B) {
	shard := benchShard(b, 20000, 64)
	var snap bytes.Buffer
	if err := shard.WriteSnapshot(&snap); err != nil {
		b.Fatal(err)
	}
	size := int64(snap.Len())

	recv, err := New(Config{Shard: shard})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()

	for _, cs := range []struct {
		name      string
		chunkSize int
	}{
		{"chunk64KB", 64 << 10},
		{"chunk1MB", 1 << 20},
		{"singleFrame", int(size) + 1},
	} {
		b.Run(cs.name, func(b *testing.B) {
			ctx := context.Background()
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := PushSnapshotWith(ctx, recv.Addr(), shard, PushOptions{ChunkSize: cs.chunkSize}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
