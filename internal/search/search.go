// Package search defines the wire contract shared by the three tiers of
// the online search architecture (Fig. 10): RPC method identifiers and the
// cross-tier stats payload. The tiers themselves live in the subpackages
// searcher, broker, blender and frontend; client provides the caller-side
// API.
package search

// RPC method identifiers. A method's request/response payloads are the
// core codecs noted beside it.
const (
	// MethodSearch: core.SearchRequest → core.SearchResponse. Served by
	// searchers (single-partition scan), brokers (fan-out to their searcher
	// subset) and blenders (feature-direct global search).
	MethodSearch uint16 = 1
	// MethodQuery: core.QueryRequest → core.SearchResponse. Served by
	// blenders (image in, ranked products out) and the frontend (load
	// balancing proxy).
	MethodQuery uint16 = 2
	// MethodStats: empty → JSON stats blob. Served by all tiers.
	MethodStats uint16 = 3
	// MethodPing: empty → empty. Liveness probe.
	MethodPing uint16 = 4
	// MethodLoadIndex: shard snapshot bytes → empty. Served by searchers:
	// the weekly full indexing pushes fresh partition indexes to the fleet
	// and each searcher hot-swaps with zero downtime (§2.2).
	MethodLoadIndex uint16 = 5
)
