// Package search defines the wire contract shared by the three tiers of
// the online search architecture (Fig. 10): RPC method identifiers and the
// cross-tier stats payload. The tiers themselves live in the subpackages
// searcher, broker, blender and frontend; client provides the caller-side
// API.
package search

import "jdvs/internal/rpc"

// RPC method identifiers. A method's request/response payloads are the
// core codecs noted beside it.
const (
	// MethodSearch: core.SearchRequest → core.SearchResponse. Served by
	// searchers (single-partition scan), brokers (fan-out to their searcher
	// subset) and blenders (feature-direct global search).
	MethodSearch uint16 = 1
	// MethodQuery: core.QueryRequest → core.SearchResponse. Served by
	// blenders (image in, ranked products out) and the frontend (load
	// balancing proxy).
	MethodQuery uint16 = 2
	// MethodStats: empty → JSON stats blob. Served by all tiers.
	MethodStats uint16 = 3
	// MethodPing: empty → empty. Liveness probe.
	MethodPing uint16 = 4
	// MethodLoadIndex: shard snapshot bytes → empty. Served by searchers:
	// the weekly full indexing pushes fresh partition indexes to the fleet
	// and each searcher hot-swaps with zero downtime (§2.2). Single-frame
	// path, only usable when the whole snapshot fits under rpc.MaxFrame;
	// larger snapshots go through the chunked session below.
	MethodLoadIndex uint16 = 5

	// Chunked snapshot streaming (rpc.StreamMethods wiring; payload formats
	// are defined by package rpc's stream codec). A pusher begins a session,
	// streams the snapshot as sequence-numbered CRC-checked chunks, and
	// commits; the searcher materialises the shard incrementally and only
	// hot-swaps it in on a verified commit. Abort (explicit, or implicit via
	// the receiver's idle timeout) discards the partial transfer without
	// touching the serving shard.
	//
	// MethodLoadIndexBegin: empty → [8B sessionID].
	MethodLoadIndexBegin uint16 = 6
	// MethodLoadIndexChunk: [8B sessionID][8B seq][4B crc32c][data] → empty.
	MethodLoadIndexChunk uint16 = 7
	// MethodLoadIndexCommit: [8B sessionID][8B chunks][8B bytes][4B crc32c]
	// → empty; swaps the shard in on success.
	MethodLoadIndexCommit uint16 = 8
	// MethodLoadIndexAbort: [8B sessionID] → empty.
	MethodLoadIndexAbort uint16 = 9
)

// LoadIndexStream is the rpc.StreamMethods wiring for chunked snapshot
// distribution, shared by the searcher (receiver) and push path (sender).
var LoadIndexStream = rpc.StreamMethods{
	Begin:  MethodLoadIndexBegin,
	Chunk:  MethodLoadIndexChunk,
	Commit: MethodLoadIndexCommit,
	Abort:  MethodLoadIndexAbort,
}
