// Package client is the caller-side API against a running cluster: dial
// the front end, send an image (or pre-extracted features), get ranked
// products back. It is what the workload generator, the examples and the
// public facade use.
package client

import (
	"context"
	"fmt"

	"jdvs/internal/core"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// Client talks to one frontend (or directly to a blender — the protocol is
// identical).
type Client struct {
	pool *rpc.Pool
}

// Dial connects n pooled connections to addr (n<=0 defaults to 2).
func Dial(addr string, n int) (*Client, error) {
	if n <= 0 {
		n = 2
	}
	pool, err := rpc.DialPool(addr, n)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return &Client{pool: pool}, nil
}

// Close releases the connections.
func (c *Client) Close() { c.pool.Close() }

// Query sends a raw query image and returns ranked product hits.
func (c *Client) Query(ctx context.Context, q *core.QueryRequest) (*core.SearchResponse, error) {
	raw, err := c.pool.Call(ctx, search.MethodQuery, core.EncodeQueryRequest(q))
	if err != nil {
		return nil, err
	}
	return core.DecodeSearchResponse(raw)
}

// SearchFeature sends an already-extracted feature vector (bypassing the
// blender's CNN), for tests and embedded callers.
func (c *Client) SearchFeature(ctx context.Context, req *core.SearchRequest) (*core.SearchResponse, error) {
	raw, err := c.pool.Call(ctx, search.MethodSearch, core.EncodeSearchRequest(req))
	if err != nil {
		return nil, err
	}
	return core.DecodeSearchResponse(raw)
}

// Ping probes liveness.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.pool.Call(ctx, search.MethodPing, nil)
	return err
}
