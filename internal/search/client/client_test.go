package client

import (
	"context"
	"testing"
	"time"

	"jdvs/internal/core"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// fakeFrontend answers the client-facing protocol with canned responses.
func fakeFrontend(t *testing.T) string {
	t.Helper()
	srv := rpc.NewServer()
	srv.Handle(search.MethodQuery, func(p []byte) ([]byte, error) {
		if _, err := core.DecodeQueryRequest(p); err != nil {
			return nil, err
		}
		return core.EncodeSearchResponse(&core.SearchResponse{
			Hits: []core.Hit{{ProductID: 7, Dist: 0.5, URL: "jfs://x.jpg", Score: 0.9}},
		}), nil
	})
	srv.Handle(search.MethodSearch, func(p []byte) ([]byte, error) {
		req, err := core.DecodeSearchRequest(p)
		if err != nil {
			return nil, err
		}
		return core.EncodeSearchResponse(&core.SearchResponse{Probed: req.NProbe}), nil
	})
	srv.Handle(search.MethodPing, func([]byte) ([]byte, error) { return nil, nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return addr
}

func TestDialDefaultsAndFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 0); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	c, err := Dial(fakeFrontend(t), 0) // n<=0 defaults
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestQueryRoundtrip(t *testing.T) {
	c, err := Dial(fakeFrontend(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	resp, err := c.Query(ctx, &core.QueryRequest{ImageBlob: []byte{1, 2, 3}, TopK: 5, CategoryScope: core.AllCategories})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(resp.Hits) != 1 || resp.Hits[0].ProductID != 7 {
		t.Fatalf("hits = %+v", resp.Hits)
	}
}

func TestSearchFeatureRoundtrip(t *testing.T) {
	c, err := Dial(fakeFrontend(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	resp, err := c.SearchFeature(ctx, &core.SearchRequest{Feature: []float32{1, 2}, TopK: 3, NProbe: 9, Category: -1})
	if err != nil {
		t.Fatalf("SearchFeature: %v", err)
	}
	if resp.Probed != 9 {
		t.Fatalf("request did not round-trip: %+v", resp)
	}
}

func TestClosedClientFailsFast(t *testing.T) {
	c, err := Dial(fakeFrontend(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err == nil {
		t.Fatal("ping succeeded on closed client")
	}
	if _, err := c.Query(ctx, &core.QueryRequest{ImageBlob: []byte{1}, TopK: 1}); err == nil {
		t.Fatal("query succeeded on closed client")
	}
}
