// Package blender implements the top tier of Fig. 10: "when a blender
// receives an image query request, it extracts the features and sends them
// to all the brokers. The blender also combines and ranks the results and
// returns to the user."
//
// The query pipeline is §2.4's: detect the item in the picture, identify
// its category, extract the item's features, fan out, merge, then rank the
// similar products "according to their sales, praise, price and other
// attributes".
package blender

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"jdvs/internal/cache"
	"jdvs/internal/cnn"
	"jdvs/internal/core"
	"jdvs/internal/imaging"
	"jdvs/internal/metrics"
	"jdvs/internal/ranking"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// Config assembles a blender.
type Config struct {
	// Brokers lists every broker's address. Required: the blender "sends
	// the query to all brokers".
	Brokers []string
	// Extractor embeds query images. Required.
	Extractor *cnn.Extractor
	// Classifier identifies the query item's category for scoped search.
	// Optional; required only for AutoCategory queries.
	Classifier *cnn.Classifier
	// Ranker orders final results (default ranking.DefaultWeights).
	Ranker *ranking.Ranker
	// ConnsPerBroker sizes each broker pool (default 2).
	ConnsPerBroker int
	// Oversample multiplies TopK when querying brokers so product-level
	// dedup still fills the final page (default 3).
	Oversample int
	// BrokerTimeout bounds the whole broker fan-out (default 10s) — a
	// stalled broker degrades coverage instead of hanging the query.
	BrokerTimeout time.Duration
	// FeatureCacheSize, when > 0, enables the query-side feature cache: up
	// to this many extracted feature vectors keyed by the content hash of
	// the query image bytes, so a re-submitted hot image (the skew
	// e-commerce traffic lives on) skips decode, detection, and the CNN
	// pass entirely (0 disables).
	FeatureCacheSize int
	// Addr is the listen address (":0" for ephemeral).
	Addr string
}

// Blender is a running blender node.
type Blender struct {
	srv        *rpc.Server
	brokers    []*rpc.Pool
	extractor  *cnn.Extractor
	classifier *cnn.Classifier
	ranker     *ranking.Ranker
	oversample int
	timeout    time.Duration
	addr       string

	// features caches (content hash → extracted feature); nil = disabled.
	features *cache.Cache[[]float32]

	queries  metrics.Counter
	failures metrics.Counter
}

// New connects to all brokers and starts serving.
func New(cfg Config) (*Blender, error) {
	if len(cfg.Brokers) == 0 {
		return nil, errors.New("blender: no brokers configured")
	}
	if cfg.Extractor == nil {
		return nil, errors.New("blender: Extractor is required")
	}
	if cfg.ConnsPerBroker <= 0 {
		cfg.ConnsPerBroker = 2
	}
	if cfg.Oversample <= 0 {
		cfg.Oversample = 3
	}
	if cfg.Ranker == nil {
		cfg.Ranker = ranking.New(ranking.DefaultWeights())
	}
	if cfg.BrokerTimeout <= 0 {
		cfg.BrokerTimeout = 10 * time.Second
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	b := &Blender{
		extractor:  cfg.Extractor,
		classifier: cfg.Classifier,
		ranker:     cfg.Ranker,
		oversample: cfg.Oversample,
		timeout:    cfg.BrokerTimeout,
		features:   cache.New[[]float32](cfg.FeatureCacheSize),
	}
	for _, addr := range cfg.Brokers {
		pool, err := rpc.DialPool(addr, cfg.ConnsPerBroker)
		if err != nil {
			b.closePools()
			return nil, fmt.Errorf("blender: dial broker %s: %w", addr, err)
		}
		b.brokers = append(b.brokers, pool)
	}
	b.srv = rpc.NewServer()
	b.srv.Handle(search.MethodQuery, b.handleQuery)
	b.srv.Handle(search.MethodSearch, b.handleSearch)
	b.srv.Handle(search.MethodStats, b.handleStats)
	b.srv.Handle(search.MethodPing, func([]byte) ([]byte, error) { return nil, nil })
	addr, err := b.srv.Listen(cfg.Addr)
	if err != nil {
		b.closePools()
		return nil, err
	}
	b.addr = addr
	return b, nil
}

// Addr returns the blender's RPC address.
func (b *Blender) Addr() string { return b.addr }

// Close stops serving and closes broker connections.
func (b *Blender) Close() {
	b.srv.Close()
	b.closePools()
}

func (b *Blender) closePools() {
	for _, p := range b.brokers {
		if p != nil {
			p.Close()
		}
	}
}

// handleQuery is the image-in, ranked-products-out path.
func (b *Blender) handleQuery(payload []byte) ([]byte, error) {
	q, err := core.DecodeQueryRequest(payload)
	if err != nil {
		return nil, err
	}
	k := q.TopK
	if k <= 0 {
		k = 10
	}

	// §2.4: detect the item, identify its category, extract features —
	// unless this exact image (by content hash) was embedded recently, in
	// which case the whole pipeline head is skipped.
	var fkey string
	feature, cached := []float32(nil), false
	if b.features != nil {
		sum := sha256.Sum256(q.ImageBlob)
		fkey = string(sum[:])
		feature, cached = b.features.Get(fkey)
	}
	if !cached {
		img, err := imaging.Decode(q.ImageBlob)
		if err != nil {
			return nil, fmt.Errorf("blender: decode query image: %w", err)
		}
		if _, err := cnn.Detect(img); err != nil {
			return nil, fmt.Errorf("blender: detect: %w", err)
		}
		if feature, err = b.extractor.Extract(img); err != nil {
			return nil, fmt.Errorf("blender: extract: %w", err)
		}
		if b.features != nil {
			b.features.Put(fkey, feature, int64(4*len(feature)))
		}
	}
	category := q.CategoryScope
	if q.AutoCategory {
		if b.classifier == nil {
			return nil, errors.New("blender: AutoCategory query but no classifier configured")
		}
		cat, err := b.classifier.Classify(feature)
		if err != nil {
			return nil, fmt.Errorf("blender: classify: %w", err)
		}
		category = int32(cat)
	}

	fanReq := &core.SearchRequest{
		Feature:       feature,
		TopK:          k * b.oversample,
		NProbe:        q.NProbe,
		Category:      category,
		MinPriceCents: q.MinPriceCents,
		MaxPriceCents: q.MaxPriceCents,
		MinSales:      q.MinSales,
	}
	resp, err := b.fanout(fanReq)
	if err != nil {
		return nil, err
	}
	// Post-merge re-check: searchers enforce the filter during the scan,
	// but attribute drift mid-query (or an older searcher ignoring the
	// predicate tail) can leak a non-matching hit into the merge.
	resp.Hits = ranking.Filter(resp.Hits, fanReq.AdmitsHit)
	resp.Hits = b.ranker.Rank(resp.Hits, k)
	b.queries.Inc()
	return core.EncodeSearchResponse(resp), nil
}

// handleSearch is the feature-direct path (already-extracted query
// features), used by tests and by services that embed upstream.
func (b *Blender) handleSearch(payload []byte) ([]byte, error) {
	req, err := core.DecodeSearchRequest(payload)
	if err != nil {
		return nil, err
	}
	k := req.TopK
	if k <= 0 {
		k = 10
	}
	fanReq := *req
	fanReq.TopK = k * b.oversample
	resp, err := b.fanout(&fanReq)
	if err != nil {
		return nil, err
	}
	resp.Hits = ranking.Filter(resp.Hits, fanReq.AdmitsHit)
	resp.Hits = b.ranker.Rank(resp.Hits, k)
	b.queries.Inc()
	return core.EncodeSearchResponse(resp), nil
}

// fanout sends the request to every broker and concatenates partial
// results. Partial broker failure degrades results rather than failing the
// query; total failure errors out.
func (b *Blender) fanout(req *core.SearchRequest) (*core.SearchResponse, error) {
	payload := core.EncodeSearchRequest(req)
	ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
	defer cancel()

	type partial struct {
		resp *core.SearchResponse
		err  error
	}
	results := make([]partial, len(b.brokers))
	var wg sync.WaitGroup
	for i, pool := range b.brokers {
		wg.Add(1)
		go func(i int, pool *rpc.Pool) {
			defer wg.Done()
			raw, err := pool.Call(ctx, search.MethodSearch, payload)
			if err != nil {
				results[i] = partial{err: err}
				return
			}
			resp, err := core.DecodeSearchResponse(raw)
			results[i] = partial{resp: resp, err: err}
		}(i, pool)
	}
	wg.Wait()

	merged := &core.SearchResponse{}
	okCount := 0
	var lastErr error
	for _, r := range results {
		if r.err != nil {
			lastErr = r.err
			b.failures.Inc()
			continue
		}
		okCount++
		merged.Hits = append(merged.Hits, r.resp.Hits...)
		merged.Scanned += r.resp.Scanned
		merged.Probed += r.resp.Probed
	}
	if okCount == 0 {
		return nil, fmt.Errorf("blender: all brokers failed: %w", lastErr)
	}
	return merged, nil
}

// Stats is the blender's stats payload.
type Stats struct {
	Brokers  int   `json:"brokers"`
	Queries  int64 `json:"queries"`
	Failures int64 `json:"failures"`
	// Feature-cache counters (all zero when the cache is disabled): hits
	// are queries whose decode/detect/extract head was skipped because the
	// same image bytes were embedded recently.
	FeatureCacheHits    int64 `json:"feature_cache_hits"`
	FeatureCacheMisses  int64 `json:"feature_cache_misses"`
	FeatureCacheEntries int64 `json:"feature_cache_entries"`
	FeatureCacheBytes   int64 `json:"feature_cache_bytes"`
}

func (b *Blender) handleStats([]byte) ([]byte, error) {
	cs := b.features.Stats()
	return json.Marshal(Stats{
		Brokers:             len(b.brokers),
		Queries:             b.queries.Value(),
		Failures:            b.failures.Value(),
		FeatureCacheHits:    cs.Hits,
		FeatureCacheMisses:  cs.Misses,
		FeatureCacheEntries: cs.Entries,
		FeatureCacheBytes:   cs.Bytes,
	})
}
