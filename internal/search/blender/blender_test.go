package blender

import (
	"context"
	"math/rand"
	"testing"

	"jdvs/internal/catalog"
	"jdvs/internal/cnn"
	"jdvs/internal/core"
	"jdvs/internal/featuredb"
	"jdvs/internal/imagestore"
	"jdvs/internal/imaging"
	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
	"jdvs/internal/search/broker"
	"jdvs/internal/search/searcher"
)

const testDim = 32

// stack is a full searcher+broker substrate for blender tests.
type stack struct {
	cat       *catalog.Catalog
	extractor *cnn.Extractor
	brokers   []*broker.Broker
	searchers []*searcher.Searcher
}

func newStack(t *testing.T, nBrokers int) *stack {
	t.Helper()
	st := &stack{extractor: cnn.New(cnn.Config{Dim: testDim, Seed: 13})}
	images := imagestore.New()
	cat, err := catalog.Generate(catalog.Config{Products: 60, Categories: 5, Seed: 29}, images)
	if err != nil {
		t.Fatal(err)
	}
	st.cat = cat
	res := &indexer.Resolver{DB: featuredb.New(), Images: images, Extractor: st.extractor}

	var train []float32
	type row struct {
		attrs core.Attrs
		feat  []float32
	}
	perPartition := make([][]row, nBrokers) // one partition per broker here
	for i := range cat.Products {
		p := &cat.Products[i]
		for _, url := range p.ImageURLs {
			e, _, err := res.Resolve(url, p.Attrs(url))
			if err != nil {
				t.Fatal(err)
			}
			train = append(train, e.Feature...)
			part := int(p.ID) % nBrokers
			perPartition[part] = append(perPartition[part], row{p.Attrs(url), e.Feature})
		}
	}
	for part := 0; part < nBrokers; part++ {
		shard, err := index.New(index.Config{Dim: testDim, NLists: 8, DefaultNProbe: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := shard.Train(train, 1); err != nil {
			t.Fatal(err)
		}
		for _, r := range perPartition[part] {
			if _, _, err := shard.Insert(r.attrs, r.feat); err != nil {
				t.Fatal(err)
			}
		}
		node, err := searcher.New(searcher.Config{Partition: core.PartitionID(part), Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		st.searchers = append(st.searchers, node)
		b, err := broker.New(broker.Config{PartitionReplicas: [][]string{{node.Addr()}}})
		if err != nil {
			t.Fatal(err)
		}
		st.brokers = append(st.brokers, b)
	}
	t.Cleanup(func() {
		for _, b := range st.brokers {
			b.Close()
		}
		for _, s := range st.searchers {
			s.Close()
		}
	})
	return st
}

func (st *stack) brokerAddrs() []string {
	out := make([]string, len(st.brokers))
	for i, b := range st.brokers {
		out[i] = b.Addr()
	}
	return out
}

func (st *stack) classifier(t *testing.T) *cnn.Classifier {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	protos := make([]float32, 0, len(st.cat.Categories)*testDim)
	for _, c := range st.cat.Categories {
		img := imaging.Generate(rng, c.Prototype, c.ID, imaging.GenConfig{Noise: 1e-4, PayloadBytes: 64})
		f, err := st.extractor.Extract(img)
		if err != nil {
			t.Fatal(err)
		}
		protos = append(protos, f...)
	}
	cls, err := cnn.NewClassifier(testDim, protos)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

func queryBlender(t *testing.T, addr string, q *core.QueryRequest) (*core.SearchResponse, error) {
	t.Helper()
	c, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodQuery, core.EncodeQueryRequest(q))
	if err != nil {
		return nil, err
	}
	return core.DecodeSearchResponse(raw)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no brokers accepted")
	}
	if _, err := New(Config{Brokers: []string{"x"}}); err == nil {
		t.Fatal("nil extractor accepted")
	}
	if _, err := New(Config{Brokers: []string{"127.0.0.1:1"}, Extractor: cnn.New(cnn.Config{Dim: 8})}); err == nil {
		t.Fatal("dial to dead broker succeeded")
	}
}

func TestImageQueryEndToEnd(t *testing.T) {
	st := newStack(t, 2)
	bl, err := New(Config{Brokers: st.brokerAddrs(), Extractor: st.extractor})
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()

	target := &st.cat.Products[11]
	blob := st.cat.QueryImage(target).Encode()
	resp, err := queryBlender(t, bl.Addr(), &core.QueryRequest{
		ImageBlob: blob, TopK: 6, CategoryScope: core.AllCategories,
	})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(resp.Hits) == 0 || len(resp.Hits) > 6 {
		t.Fatalf("got %d hits", len(resp.Hits))
	}
	found := false
	seen := map[uint64]bool{}
	for _, h := range resp.Hits {
		if h.ProductID == target.ID {
			found = true
		}
		if seen[h.ProductID] {
			t.Fatalf("duplicate product %d in ranked results", h.ProductID)
		}
		seen[h.ProductID] = true
		if h.Score == 0 {
			t.Fatalf("unranked hit: %+v", h)
		}
	}
	if !found {
		t.Fatalf("query product %d not in results", target.ID)
	}
	// Scores descend.
	for i := 1; i < len(resp.Hits); i++ {
		if resp.Hits[i].Score > resp.Hits[i-1].Score {
			t.Fatal("results not ranked by score")
		}
	}
}

func TestAutoCategoryScoping(t *testing.T) {
	st := newStack(t, 2)
	bl, err := New(Config{
		Brokers:    st.brokerAddrs(),
		Extractor:  st.extractor,
		Classifier: st.classifier(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()

	target := &st.cat.Products[5]
	blob := st.cat.QueryImage(target).Encode()
	resp, err := queryBlender(t, bl.Addr(), &core.QueryRequest{
		ImageBlob: blob, TopK: 10, AutoCategory: true,
	})
	if err != nil {
		t.Fatalf("auto-category query: %v", err)
	}
	for _, h := range resp.Hits {
		if h.Category != target.Category {
			t.Fatalf("hit outside detected category %d: %+v", target.Category, h)
		}
	}
	// AutoCategory without a classifier is a client error.
	noCls, err := New(Config{Brokers: st.brokerAddrs(), Extractor: st.extractor})
	if err != nil {
		t.Fatal(err)
	}
	defer noCls.Close()
	if _, err := queryBlender(t, noCls.Addr(), &core.QueryRequest{ImageBlob: blob, TopK: 3, AutoCategory: true}); err == nil {
		t.Fatal("auto-category accepted without classifier")
	}
}

func TestFeatureDirectSearch(t *testing.T) {
	st := newStack(t, 2)
	bl, err := New(Config{Brokers: st.brokerAddrs(), Extractor: st.extractor})
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()
	target := &st.cat.Products[3]
	f, err := st.extractor.Extract(st.cat.QueryImage(target))
	if err != nil {
		t.Fatal(err)
	}
	c, err := rpc.Dial(bl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodSearch,
		core.EncodeSearchRequest(&core.SearchRequest{Feature: f, TopK: 5, NProbe: 8, Category: -1}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := core.DecodeSearchResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("feature-direct search empty")
	}
}

func TestMalformedQueryImage(t *testing.T) {
	st := newStack(t, 1)
	bl, err := New(Config{Brokers: st.brokerAddrs(), Extractor: st.extractor})
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()
	_, err = queryBlender(t, bl.Addr(), &core.QueryRequest{ImageBlob: []byte("not an image"), TopK: 3})
	if err == nil {
		t.Fatal("malformed image accepted")
	}
}

// TestPartialBrokerFailure: one broker down degrades coverage, not
// availability.
func TestPartialBrokerFailure(t *testing.T) {
	st := newStack(t, 2)
	bl, err := New(Config{Brokers: st.brokerAddrs(), Extractor: st.extractor})
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()
	st.brokers[0].Close()
	target := &st.cat.Products[2]
	blob := st.cat.QueryImage(target).Encode()
	resp, err := queryBlender(t, bl.Addr(), &core.QueryRequest{ImageBlob: blob, TopK: 6, CategoryScope: core.AllCategories})
	if err != nil {
		t.Fatalf("query failed with one broker down: %v", err)
	}
	for _, h := range resp.Hits {
		if int(h.ProductID)%2 == 0 { // partition 0's products live behind broker 0
			t.Fatalf("hit from dead broker's partition: %+v", h)
		}
	}
	st.brokers[1].Close()
	if _, err := queryBlender(t, bl.Addr(), &core.QueryRequest{ImageBlob: blob, TopK: 6, CategoryScope: core.AllCategories}); err == nil {
		t.Fatal("query succeeded with all brokers dead")
	}
}
