package frontend

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// fakeBlender is a minimal MethodQuery/MethodSearch server for frontend
// tests: it tags responses with its own name so round-robin is observable.
type fakeBlender struct {
	srv  *rpc.Server
	name string
	mu   sync.Mutex
	hits int
	fail bool
}

func newFakeBlender(t *testing.T, name string) *fakeBlender {
	t.Helper()
	f := &fakeBlender{name: name}
	f.srv = rpc.NewServer()
	handler := func(payload []byte) ([]byte, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.fail {
			return nil, errors.New("blender rejects")
		}
		f.hits++
		return []byte(f.name), nil
	}
	f.srv.Handle(search.MethodQuery, handler)
	f.srv.Handle(search.MethodSearch, handler)
	f.srv.Handle(search.MethodPing, func([]byte) ([]byte, error) { return nil, nil })
	if _, err := f.srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeBlender) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits
}

func (f *fakeBlender) setFail(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = v
}

func call(t *testing.T, addr string, method uint16) (string, error) {
	t.Helper()
	c, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), method, []byte("q"))
	return string(raw), err
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no blenders accepted")
	}
	if _, err := New(Config{Blenders: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatal("dial to dead blender succeeded")
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	b1 := newFakeBlender(t, "b1")
	b2 := newFakeBlender(t, "b2")
	f, err := New(Config{Blenders: []string{b1.srv.Addr(), b2.srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := call(t, f.Addr(), search.MethodQuery); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	c1, c2 := b1.count(), b2.count()
	if c1+c2 != n {
		t.Fatalf("counts %d+%d != %d", c1, c2, n)
	}
	if c1 == 0 || c2 == 0 {
		t.Fatalf("round robin skipped a blender: %d/%d", c1, c2)
	}
}

// TestFailoverOnBlenderDeath: a dead blender's share flows to survivors.
func TestFailoverOnBlenderDeath(t *testing.T) {
	b1 := newFakeBlender(t, "b1")
	b2 := newFakeBlender(t, "b2")
	f, err := New(Config{Blenders: []string{b1.srv.Addr(), b2.srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b1.srv.Close()
	for i := 0; i < 10; i++ {
		got, err := call(t, f.Addr(), search.MethodQuery)
		if err != nil {
			t.Fatalf("query %d failed after blender death: %v", i, err)
		}
		if got != "b2" {
			t.Fatalf("query %d answered by %q", i, got)
		}
	}
	// Stats record retries.
	c, err := rpc.Dial(f.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Call(context.Background(), search.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Fatalf("stats = %+v, want retries > 0", st)
	}
}

// TestRemoteErrorNotRetried: a blender that rejects the request (bad
// query) must not trigger failover — the rejection is authoritative.
func TestRemoteErrorNotRetried(t *testing.T) {
	b1 := newFakeBlender(t, "b1")
	b2 := newFakeBlender(t, "b2")
	b1.setFail(true)
	b2.setFail(true)
	f, err := New(Config{Blenders: []string{b1.srv.Addr(), b2.srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = call(t, f.Addr(), search.MethodQuery)
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	// The blender's rejection is surfaced (nested once by the proxy hop),
	// not converted into an "all blenders failed" failover error.
	if !strings.Contains(re.Msg, "blender rejects") {
		t.Fatalf("unexpected remote error %q", re.Msg)
	}
}

func TestAllBlendersDead(t *testing.T) {
	b1 := newFakeBlender(t, "b1")
	f, err := New(Config{Blenders: []string{b1.srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b1.srv.Close()
	if _, err := call(t, f.Addr(), search.MethodQuery); err == nil {
		t.Fatal("query succeeded with all blenders dead")
	}
}
