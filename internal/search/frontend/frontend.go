// Package frontend implements the front end of Fig. 1 — the load balancer
// (Nginx in the production deployment) that "forwards the query to one of
// the blenders". It spreads queries round-robin across blender instances
// and retries the next blender when one fails, providing the tier's load
// balancing and fault tolerance.
package frontend

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"jdvs/internal/metrics"
	"jdvs/internal/rpc"
	"jdvs/internal/search"
)

// Config assembles a frontend.
type Config struct {
	// Blenders lists every blender's address. Required.
	Blenders []string
	// ConnsPerBlender sizes each blender pool (default 2).
	ConnsPerBlender int
	// Addr is the listen address (":0" for ephemeral).
	Addr string
}

// Frontend is a running front-end node.
type Frontend struct {
	srv   *rpc.Server
	pools []*rpc.Pool
	next  atomic.Uint64
	addr  string

	queries  metrics.Counter
	retries  metrics.Counter
	failures metrics.Counter
}

// New connects to all blenders and starts serving.
func New(cfg Config) (*Frontend, error) {
	if len(cfg.Blenders) == 0 {
		return nil, errors.New("frontend: no blenders configured")
	}
	if cfg.ConnsPerBlender <= 0 {
		cfg.ConnsPerBlender = 2
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	f := &Frontend{}
	for _, addr := range cfg.Blenders {
		pool, err := rpc.DialPool(addr, cfg.ConnsPerBlender)
		if err != nil {
			f.closePools()
			return nil, fmt.Errorf("frontend: dial blender %s: %w", addr, err)
		}
		f.pools = append(f.pools, pool)
	}
	f.srv = rpc.NewServer()
	f.srv.Handle(search.MethodQuery, f.proxy(search.MethodQuery))
	f.srv.Handle(search.MethodSearch, f.proxy(search.MethodSearch))
	f.srv.Handle(search.MethodStats, f.handleStats)
	f.srv.Handle(search.MethodPing, func([]byte) ([]byte, error) { return nil, nil })
	addr, err := f.srv.Listen(cfg.Addr)
	if err != nil {
		f.closePools()
		return nil, err
	}
	f.addr = addr
	return f, nil
}

// Addr returns the frontend's address — the single endpoint clients see.
func (f *Frontend) Addr() string { return f.addr }

// Close stops serving and closes blender connections.
func (f *Frontend) Close() {
	f.srv.Close()
	f.closePools()
}

func (f *Frontend) closePools() {
	for _, p := range f.pools {
		if p != nil {
			p.Close()
		}
	}
}

// proxy forwards a method to one blender, retrying the others on failure.
func (f *Frontend) proxy(method uint16) rpc.Handler {
	return func(payload []byte) ([]byte, error) {
		f.queries.Inc()
		ctx := context.Background()
		n := len(f.pools)
		start := int(f.next.Add(1))
		var lastErr error
		for i := 0; i < n; i++ {
			pool := f.pools[(start+i)%n]
			resp, err := pool.Call(ctx, method, payload)
			if err == nil {
				return resp, nil
			}
			// A RemoteError means the blender is alive but rejected the
			// request (bad query); retrying elsewhere cannot help.
			var re *rpc.RemoteError
			if errors.As(err, &re) {
				return nil, err
			}
			lastErr = err
			f.retries.Inc()
		}
		f.failures.Inc()
		return nil, fmt.Errorf("frontend: all blenders failed: %w", lastErr)
	}
}

// Stats is the frontend's stats payload.
type Stats struct {
	Blenders int   `json:"blenders"`
	Queries  int64 `json:"queries"`
	Retries  int64 `json:"retries"`
	Failures int64 `json:"failures"`
}

func (f *Frontend) handleStats([]byte) ([]byte, error) {
	return json.Marshal(Stats{
		Blenders: len(f.pools),
		Queries:  f.queries.Value(),
		Retries:  f.retries.Value(),
		Failures: f.failures.Value(),
	})
}
