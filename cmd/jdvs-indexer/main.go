// Command jdvs-indexer runs the offline full indexing pipeline (Figs. 2–3):
// it generates (or re-generates) the synthetic catalog, replays the listing
// events through the feature pipeline exactly as production full indexing
// replays the day's message log, and writes one snapshot file per index
// partition, ready for jdvsd searchers to serve.
//
//	jdvs-indexer -out /tmp/jdvs -partitions 4 -products 5000 -seed 1
//
// The catalog parameters (products, categories, seed) and the feature
// parameters (dim, feature-seed) must match across jdvs-indexer, jdvsd
// blenders and jdvs-client — they define the shared synthetic world that
// stands in for JD's image corpus and production CNN.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cnn"
	"jdvs/internal/featuredb"
	"jdvs/internal/imagestore"
	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-indexer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out         = flag.String("out", "jdvs-index", "output directory for partition snapshots")
		partitions  = flag.Int("partitions", 4, "number of index partitions")
		products    = flag.Int("products", 5_000, "catalog size")
		categories  = flag.Int("categories", 12, "catalog categories")
		seed        = flag.Int64("seed", 1, "catalog seed")
		dim         = flag.Int("dim", cnn.DefaultDim, "feature dimensionality")
		featureSeed = flag.Int64("feature-seed", 42, "CNN weight seed (must match blenders)")
		nlists      = flag.Int("nlists", 64, "IVF inverted lists per partition")
		saveLog     = flag.String("save-log", "", "write the day's message log to this file after feeding")
		loadLog     = flag.String("load-log", "", "replay an existing message log instead of generating listing events")
	)
	flag.Parse()

	start := time.Now()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	// The synthetic world: catalog + image store + feature pipeline.
	images := imagestore.New()
	cat, err := catalog.Generate(catalog.Config{
		Products: *products, Categories: *categories, Seed: *seed,
	}, images)
	if err != nil {
		return fmt.Errorf("generate catalog: %w", err)
	}
	res := &indexer.Resolver{
		DB:        featuredb.New(),
		Images:    images,
		Extractor: cnn.New(cnn.Config{Dim: *dim, Seed: *featureSeed}),
	}

	// The "day's message log": either replay a saved one, or feed the
	// listing event for every product, then run the full build over it.
	q := mq.New()
	defer q.Close()
	if *loadLog != "" {
		f, err := os.Open(*loadLog)
		if err != nil {
			return err
		}
		_, err = q.ReadFrom(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load log %s: %w", *loadLog, err)
		}
		if got := q.Partitions(indexer.UpdatesTopic); got != *partitions {
			return fmt.Errorf("log %s has %d partitions, -partitions says %d", *loadLog, got, *partitions)
		}
		fmt.Printf("replaying message log %s\n", *loadLog)
	} else {
		if err := q.CreateTopic(indexer.UpdatesTopic, *partitions); err != nil {
			return err
		}
		seq := uint64(0)
		for i := range cat.Products {
			p := &cat.Products[i]
			seq++
			u := catalogAddEvent(p, seq)
			if _, err := indexer.RouteUpdate(q, u); err != nil {
				return fmt.Errorf("feed: %w", err)
			}
		}
	}
	if *saveLog != "" {
		f, err := os.Create(*saveLog)
		if err != nil {
			return err
		}
		_, err = q.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("save log %s: %w", *saveLog, err)
		}
		fmt.Printf("message log saved to %s\n", *saveLog)
	}
	full, err := indexer.NewFull(indexer.FullConfig{
		Partitions: *partitions,
		Shard:      index.Config{Dim: *dim, NLists: *nlists},
		Seed:       *featureSeed,
	}, res)
	if err != nil {
		return err
	}
	shards, cb, err := full.Build(q)
	if err != nil {
		return fmt.Errorf("full build: %w", err)
	}

	totalImages := 0
	for p, s := range shards {
		path := filepath.Join(*out, fmt.Sprintf("part%d.snap", p))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := s.WriteSnapshot(f); err != nil {
			f.Close()
			return fmt.Errorf("snapshot partition %d: %w", p, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := s.Stats()
		totalImages += st.Images
		fmt.Printf("partition %d: %6d images, %4d products -> %s\n", p, st.Images, st.Products, path)
	}
	fmt.Printf("\nfull index built in %s: %d images across %d partitions, codebook %dx%d\n",
		time.Since(start).Round(time.Millisecond), totalImages, *partitions, cb.K, cb.Dim)
	fmt.Printf("serve with: jdvsd -role searcher -partition <p> -snapshot %s/part<p>.snap -dim %d -nlists %d\n",
		*out, *dim, *nlists)
	return nil
}

func catalogAddEvent(p *catalog.Product, seq uint64) *msg.ProductUpdate {
	return &msg.ProductUpdate{
		Type:       msg.TypeAddProduct,
		ProductID:  p.ID,
		Category:   p.Category,
		Sales:      p.Sales,
		Praise:     p.Praise,
		PriceCents: p.PriceCents,
		ImageURLs:  append([]string(nil), p.ImageURLs...),
		Seq:        seq,
	}
}
