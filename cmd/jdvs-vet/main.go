// Command jdvs-vet is the project's invariant checker: a multichecker
// over the analyzers in internal/analysis/passes that encode the
// contracts the type system cannot — the lock-free publish protocol
// (atomicmix, publishorder), the mmap finalizer pin (mmappin), no
// blocking ops under serving-path mutexes (lockhold), end-to-end knob
// threading (knobthread), counted error paths (statcount), conventional
// package comments on every package (pkgdoc), no producer-reachable
// mutable state shared through caches or fan-out (aliasshare), balanced
// sync.Pool borrows (poolreturn), settled timers and tickers
// (timerstop) — plus stdlib-only stand-ins for the stock nilness and
// unusedwrite passes, which the offline build environment cannot fetch
// from x/tools. The directiverot audit runs last and checks the
// `//jdvs:` escape hatches themselves: unknown names, missing
// justifications, and suppressions whose finding no longer exists.
//
// Usage:
//
//	go run ./cmd/jdvs-vet ./...
//	go run ./cmd/jdvs-vet -only atomicmix,lockhold ./internal/index
//	go run ./cmd/jdvs-vet -json ./... | jq .
//
// Exit status is 0 when no analyzer reports, 1 on findings, 2 on a
// loading or internal error — the same convention as go vet, so CI can
// gate on it directly. The default output format is
// file:line:col: analyzer: message, which .github/jdvs-vet-problem-matcher.json
// turns into GitHub annotations; -json emits one object per finding for
// other tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"jdvs/internal/analysis"
	"jdvs/internal/analysis/passes/aliasshare"
	"jdvs/internal/analysis/passes/atomicmix"
	"jdvs/internal/analysis/passes/directiverot"
	"jdvs/internal/analysis/passes/knobthread"
	"jdvs/internal/analysis/passes/lockhold"
	"jdvs/internal/analysis/passes/mmappin"
	"jdvs/internal/analysis/passes/nilness"
	"jdvs/internal/analysis/passes/pkgdoc"
	"jdvs/internal/analysis/passes/poolreturn"
	"jdvs/internal/analysis/passes/publishorder"
	"jdvs/internal/analysis/passes/statcount"
	"jdvs/internal/analysis/passes/timerstop"
	"jdvs/internal/analysis/passes/unusedwrite"
)

// all lists every analyzer in execution order. directiverot must stay
// last: its dead-suppression audit reads the directive hits the other
// analyzers record into the per-package index as they run.
var all = []*analysis.Analyzer{
	atomicmix.Analyzer,
	mmappin.Analyzer,
	lockhold.Analyzer,
	knobthread.Analyzer,
	statcount.Analyzer,
	pkgdoc.Analyzer,
	nilness.Analyzer,
	unusedwrite.Analyzer,
	publishorder.Analyzer,
	aliasshare.Analyzer,
	poolreturn.Analyzer,
	timerstop.Analyzer,
	directiverot.Analyzer,
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of vet-style lines")
	listCache := flag.String("listcache", "", "directory for caching go list output (caller owns invalidation; see analysis.SetListCache)")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *listCache != "" {
		analysis.SetListCache(*listCache)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
		os.Exit(2)
	}
	fset, pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
		os.Exit(2)
	}

	findings, err := analysis.RunAnalyzers(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
		os.Exit(2)
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	picked := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if _, ok := byName[name]; !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		picked[name] = true
	}
	// Preserve registration order regardless of the -only spelling so
	// directiverot still runs after its owners when both are selected.
	var ordered []*analysis.Analyzer
	for _, a := range all {
		if picked[a.Name] {
			ordered = append(ordered, a)
		}
	}
	return ordered, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: jdvs-vet [-only a,b] [-list] [-json] [-listcache dir] [packages]\n\n")
	fmt.Fprintf(os.Stderr, "Checks jdvs project invariants. Analyzers:\n\n")
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}
