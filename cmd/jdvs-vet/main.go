// Command jdvs-vet is the project's invariant checker: a multichecker
// over the analyzers in internal/analysis/passes that encode the
// contracts the type system cannot — the lock-free publish protocol
// (atomicmix), the mmap finalizer pin (mmappin), no blocking ops under
// serving-path mutexes (lockhold), end-to-end knob threading
// (knobthread), counted error paths (statcount), conventional package
// comments on every package (pkgdoc) — plus stdlib-only
// stand-ins for the stock nilness and unusedwrite passes, which the
// offline build environment cannot fetch from x/tools.
//
// Usage:
//
//	go run ./cmd/jdvs-vet ./...
//	go run ./cmd/jdvs-vet -only atomicmix,lockhold ./internal/index
//
// Exit status is 0 when no analyzer reports, 1 on findings, 2 on a
// loading or internal error — the same convention as go vet, so CI can
// gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"jdvs/internal/analysis"
	"jdvs/internal/analysis/passes/atomicmix"
	"jdvs/internal/analysis/passes/knobthread"
	"jdvs/internal/analysis/passes/lockhold"
	"jdvs/internal/analysis/passes/mmappin"
	"jdvs/internal/analysis/passes/nilness"
	"jdvs/internal/analysis/passes/pkgdoc"
	"jdvs/internal/analysis/passes/statcount"
	"jdvs/internal/analysis/passes/unusedwrite"
)

var all = []*analysis.Analyzer{
	atomicmix.Analyzer,
	mmappin.Analyzer,
	lockhold.Analyzer,
	knobthread.Analyzer,
	statcount.Analyzer,
	pkgdoc.Analyzer,
	nilness.Analyzer,
	unusedwrite.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
		os.Exit(2)
	}
	fset, pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
		os.Exit(2)
	}

	findings, err := analysis.RunAnalyzers(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: jdvs-vet [-only a,b] [-list] [packages]\n\n")
	fmt.Fprintf(os.Stderr, "Checks jdvs project invariants. Analyzers:\n\n")
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}
