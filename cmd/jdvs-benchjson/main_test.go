package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: jdvs/internal/search/broker
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBrokerTailLatency/hedged=false-8         	     100	  20109815 ns/op	         0 hedge-frac	     41234 p50-ns	 200748139 p99-ns	    3202 B/op	      51 allocs/op
BenchmarkBrokerTailLatency/hedged=false-8         	     110	  18000000 ns/op	         0 hedge-frac	     40000 p50-ns	 190000000 p99-ns	    3100 B/op	      49 allocs/op
BenchmarkBrokerTailLatency/hedged=true-8          	    8354	    150134 ns/op	         0.09931 hedge-frac	     28611 p50-ns	   1313092 p99-ns	    3581 B/op	      55 allocs/op
PASS
ok  	jdvs/internal/search/broker	9.322s
goos: linux
goarch: amd64
pkg: jdvs/internal/index
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBrokerTailLatency/hedged=false-8         	      50	    999999 ns/op
PASS
ok  	jdvs/internal/index	1.000s
`

func TestParseAggregates(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" {
		t.Fatalf("header = %+v", doc)
	}
	if doc.CPU == "" {
		t.Fatal("cpu line not captured")
	}
	// A same-named benchmark in a second package stays its own entry.
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	// Sorted by package then name; the -8 cpu suffix and the Benchmark
	// prefix are stripped.
	other := doc.Benchmarks[0]
	if other.Package != "jdvs/internal/index" || other.Runs != 1 || other.Metrics["ns/op"].Mean != 999999 {
		t.Fatalf("cross-package benchmark = %+v", other)
	}
	unhedged := doc.Benchmarks[1]
	if unhedged.Name != "BrokerTailLatency/hedged=false" {
		t.Fatalf("name = %q", unhedged.Name)
	}
	if unhedged.Package != "jdvs/internal/search/broker" {
		t.Fatalf("package = %q", unhedged.Package)
	}
	if unhedged.Runs != 2 || unhedged.Iterations != 210 {
		t.Fatalf("runs/iters = %d/%d, want 2/210", unhedged.Runs, unhedged.Iterations)
	}
	ns := unhedged.Metrics["ns/op"]
	if ns == nil || len(ns.Samples) != 2 {
		t.Fatalf("ns/op = %+v", ns)
	}
	if ns.Min != 18000000 || ns.Max != 20109815 {
		t.Fatalf("ns/op min/max = %v/%v", ns.Min, ns.Max)
	}
	if want := (20109815.0 + 18000000.0) / 2; ns.Mean != want {
		t.Fatalf("ns/op mean = %v, want %v", ns.Mean, want)
	}
	for _, unit := range []string{"B/op", "allocs/op", "p99-ns", "hedge-frac"} {
		if unhedged.Metrics[unit] == nil {
			t.Fatalf("missing metric %q", unit)
		}
	}
	hedged := doc.Benchmarks[2]
	if hedged.Runs != 1 || hedged.Metrics["hedge-frac"].Mean != 0.09931 {
		t.Fatalf("hedged = %+v", hedged)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := Parse(strings.NewReader("PASS\nok x 1s\n--- BENCH: oddline\nBenchmarkBroken abc\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed noise as benchmarks: %+v", doc.Benchmarks)
	}
}

func TestParseRejectsCorruptValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8 10 zz ns/op\n")); err == nil {
		t.Fatal("corrupt value accepted")
	}
}
