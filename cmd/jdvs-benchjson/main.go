// Command jdvs-benchjson converts `go test -bench` output into a compact
// JSON document the CI bench job publishes as an artifact (BENCH_*.json),
// so the performance trajectory of the hot paths — broker fan-out,
// snapshot push, shard scan — accumulates machine-readable data points
// per commit instead of log text.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' -count=5 ./internal/... | jdvs-benchjson -out BENCH.json
//
// Repeated runs of one benchmark (-count=N) are aggregated benchstat-style:
// per metric unit (ns/op, B/op, allocs/op, and any b.ReportMetric unit like
// p99-ns or hedge-frac) the mean/min/max and the raw samples are kept.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metric aggregates one unit's samples across repeated runs.
type Metric struct {
	Mean    float64   `json:"mean"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Samples []float64 `json:"samples"`
}

// Benchmark is one benchmark's aggregated result. Package comes from the
// preceding "pkg:" header, so one file holding several packages' bench
// output (the CI job pipes multiple ./... packages into one artifact)
// keeps same-named benchmarks apart.
type Benchmark struct {
	Package string `json:"package,omitempty"`
	Name    string `json:"name"`
	// Runs is how many times the benchmark ran (-count), Iterations the
	// summed b.N across runs.
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]*Metric `json:"metrics"`
}

// Document is the artifact payload.
type Document struct {
	GoOS       string       `json:"goos,omitempty"`
	GoArch     string       `json:"goarch,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "bench output to read ('-' = stdin)")
	out := flag.String("out", "-", "JSON file to write ('-' = stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(blob)
	} else {
		err = os.WriteFile(*out, blob, 0o644)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jdvs-benchjson:", err)
	os.Exit(1)
}

// cpuSuffix strips the trailing -GOMAXPROCS marker go test appends to
// benchmark names (Foo/case=x-8 → Foo/case=x).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and aggregates it.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	byName := make(map[string]*Benchmark)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
		key := pkg + "\x00" + name
		b := byName[key]
		if b == nil {
			b = &Benchmark{Package: pkg, Name: name, Metrics: make(map[string]*Metric)}
			byName[key] = b
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
		b.Runs++
		b.Iterations += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			unit := fields[i+1]
			m := b.Metrics[unit]
			if m == nil {
				m = &Metric{Min: v, Max: v}
				b.Metrics[unit] = m
			}
			m.Samples = append(m.Samples, v)
			if v < m.Min {
				m.Min = v
			}
			if v > m.Max {
				m.Max = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range doc.Benchmarks {
		for _, m := range b.Metrics {
			sum := 0.0
			for _, v := range m.Samples {
				sum += v
			}
			m.Mean = sum / float64(len(m.Samples))
		}
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		if doc.Benchmarks[i].Package != doc.Benchmarks[j].Package {
			return doc.Benchmarks[i].Package < doc.Benchmarks[j].Package
		}
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}
