// Command jdvs-client queries a running cluster (local or multi-process):
// it regenerates the shared synthetic catalog, takes a fresh "camera
// photo" of a chosen product, and prints the ranked results.
//
//	jdvs-client -addr 127.0.0.1:7001 -query-product 42 -k 6
//
// The catalog flags must match the jdvs-indexer run that built the index —
// they define the shared synthetic world.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/core"
	"jdvs/internal/search/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:7001", "frontend (or blender) address")
		products   = flag.Int("products", 5_000, "catalog size (must match the indexer)")
		categories = flag.Int("categories", 12, "catalog categories (must match the indexer)")
		seed       = flag.Int64("seed", 1, "catalog seed (must match the indexer)")
		queryIdx   = flag.Int("query-product", 42, "index of the product to photograph")
		k          = flag.Int("k", 6, "results wanted")
		nprobe     = flag.Int("nprobe", 0, "inverted lists probed per searcher (0 = server default)")
		scoped     = flag.Bool("scoped", false, "restrict results to the query product's own category")
		minPrice   = flag.Float64("min-price", 0, "only admit results priced at least this (yuan; 0 = unbounded)")
		maxPrice   = flag.Float64("max-price", 0, "only admit results priced at most this (yuan; 0 = unbounded)")
		minSales   = flag.Uint64("min-sales", 0, "only admit results with at least this sales volume (0 = unbounded)")
		timeout    = flag.Duration("timeout", 10*time.Second, "query timeout")
	)
	flag.Parse()

	cat, err := catalog.Generate(catalog.Config{
		Products: *products, Categories: *categories, Seed: *seed,
	}, nil) // nil store: we only need latents to photograph, not blobs
	if err != nil {
		return fmt.Errorf("regenerate catalog: %w", err)
	}
	if *queryIdx < 0 || *queryIdx >= len(cat.Products) {
		return fmt.Errorf("-query-product %d out of range [0,%d)", *queryIdx, len(cat.Products))
	}
	target := &cat.Products[*queryIdx]

	c, err := client.Dial(*addr, 2)
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	t0 := time.Now()
	scope := int32(core.AllCategories)
	if *scoped {
		scope = int32(target.Category)
	}
	resp, err := c.Query(ctx, &core.QueryRequest{
		ImageBlob:     cat.QueryImage(target).Encode(),
		TopK:          *k,
		NProbe:        *nprobe,
		CategoryScope: scope,
		MinPriceCents: uint32(*minPrice * 100),
		MaxPriceCents: uint32(*maxPrice * 100),
		MinSales:      uint32(*minSales),
	})
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	fmt.Printf("photo of product %d (%s) -> %d results in %s (%d candidates scanned)\n\n",
		target.ID, cat.CategoryName(target.Category), len(resp.Hits),
		time.Since(t0).Round(time.Microsecond), resp.Scanned)
	fmt.Printf("%4s  %9s  %-12s  %8s  %8s  %7s  %9s\n", "rank", "product", "category", "dist", "score", "sales", "price")
	for i, h := range resp.Hits {
		marker := " "
		if h.ProductID == target.ID {
			marker = "*"
		}
		fmt.Printf("%3d%s  %9d  %-12s  %8.4f  %8.4f  %7d  ¥%8.2f\n",
			i+1, marker, h.ProductID, cat.CategoryName(h.Category), h.Dist, h.Score, h.Sales, float64(h.PriceCents)/100)
	}
	return nil
}
