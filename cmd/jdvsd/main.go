// Command jdvsd runs one node of the search hierarchy (Fig. 10) as its own
// process, for multi-process / multi-host deployment. Bring a cluster up
// tier by tier:
//
//	jdvs-indexer -out /tmp/jdvs -partitions 2 -products 5000
//	jdvsd -role searcher -addr :7101 -partition 0 -snapshot /tmp/jdvs/part0.snap &
//	jdvsd -role searcher -addr :7102 -partition 1 -snapshot /tmp/jdvs/part1.snap &
//	jdvsd -role broker   -addr :7201 -searchers "127.0.0.1:7101;127.0.0.1:7102" &
//	jdvsd -role blender  -addr :7301 -brokers 127.0.0.1:7201 &
//	jdvsd -role frontend -addr :7001 -blenders 127.0.0.1:7301 &
//	jdvs-client -addr 127.0.0.1:7001 -query-product 42
//
// Searcher address lists: partitions are separated by ';', replicas of one
// partition by ','.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"jdvs/internal/cnn"
	"jdvs/internal/core"
	"jdvs/internal/index"
	"jdvs/internal/ranking"
	"jdvs/internal/search/blender"
	"jdvs/internal/search/broker"
	"jdvs/internal/search/frontend"
	"jdvs/internal/search/searcher"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jdvsd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role      = flag.String("role", "", "node role: searcher, broker, blender, frontend")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		partition = flag.Int("partition", 0, "searcher: partition number")
		snapshot  = flag.String("snapshot", "", "searcher: snapshot file to serve")
		dim       = flag.Int("dim", cnn.DefaultDim, "searcher/blender: feature dimensionality")
		nlists    = flag.Int("nlists", 64, "searcher: IVF lists (must match the snapshot)")
		nprobe    = flag.Int("nprobe", 0, "searcher: inverted lists probed per query when the request does not specify (0 = default 8, clamped to -nlists)")
		listCap   = flag.Int("list-cap", 0, "searcher: initial per-inverted-list capacity, in images (0 = library default; size to expected images per list to avoid growth churn during bulk loads)")
		searchers = flag.String("searchers", "", "broker: searcher addresses, ';' between partitions, ',' between replicas")
		brokers   = flag.String("brokers", "", "blender: comma-separated broker addresses")
		blenders  = flag.String("blenders", "", "frontend: comma-separated blender addresses")
		fseed     = flag.Int64("feature-seed", 42, "blender: CNN weight seed (must match the indexer)")
		workers   = flag.Int("search-workers", 0, "searcher: goroutines scanning probed lists per query (0 = GOMAXPROCS-derived, 1 = serial)")
		loadIdle  = flag.Duration("load-idle-timeout", 0, "searcher: abort an inbound snapshot stream idle longer than this (0 = default)")
		pqM       = flag.Int("pq-subvectors", 0, "searcher: product-quantization code bytes per image (must divide -dim; 0 = exact float scan, -1 = dimension-derived default)")
		pqRerank  = flag.Int("pq-rerank", 0, "searcher: ADC over-fetch depth re-ranked exactly per query (0 = bit-width default: 20×TopK at 8 bits, 30×TopK at 4)")
		pqBits    = flag.Int("pq-bits", 0, "searcher: PQ code bit width: 8 (default) = one code byte per subvector, 4 = two 16-centroid subvectors packed per byte, scanned through the blocked fast-scan kernel at half the code memory")
		batchWin  = flag.Duration("batch-window", 0, "searcher: collect concurrent searches arriving within this window into one batched index pass (0 = disabled; adds up to the window to a lone query's latency)")
		batchMax  = flag.Int("batch-max-queries", 0, "searcher: cap on one search batch; a full window executes immediately (0 = default 16)")
		filterNP  = flag.Int("filter-max-nprobe", 0, "searcher: cap on the adaptive probe widening for filtered queries (0 = 8× the base width, clamped to -nlists; set to -nlists to let very selective filters scan every list)")
		filterRK  = flag.Int("filter-max-rerank", 0, "searcher: cap on the matching ADC re-rank widening for filtered queries (0 = 4× the unfiltered depth)")
		pqSample  = flag.Int("pq-train-sample", 10000, "searcher: stored rows used to train PQ when the snapshot carries no codes")
		featStore = flag.String("feature-store", "", "searcher: where raw feature rows live: ram (default, dim×4 heap bytes per image) or mmap (rows tiered onto a page-cache-served spill file — RAM holds only the PQ codes, so one shard fits several× more images)")
		spillDir  = flag.String("spill-dir", "", "searcher: directory for feature-store spill files with -feature-store mmap (default: OS temp dir; files are unlinked at creation)")
		hedgeQ    = flag.Float64("hedge-quantile", 0, "broker: latency percentile that triggers a hedged replica request (0 = default 95, negative disables)")
		hedgeMin  = flag.Duration("hedge-min-delay", 0, "broker: floor on the hedge delay (0 = default 1ms)")
		hedgeFrac = flag.Float64("hedge-max-fraction", 0, "broker: hedge budget as a fraction of query volume (0 = default 0.1)")
		resCache  = flag.Int("result-cache", 0, "broker: result-cache capacity in pages, keyed by request digest and invalidated by the searchers' applied-offset watermarks (0 = disabled)")
		resLag    = flag.Int64("result-cache-max-lag", 0, "broker: queue offsets a covered shard may advance past a cached page's watermark before the page is dropped (0 = any advance invalidates)")
		featCache = flag.Int("feature-cache", 0, "blender: feature-cache capacity in vectors, keyed by query-image content hash — a repeated image skips decode/detect/extract (0 = disabled)")
	)
	flag.Parse()

	var (
		boundAddr string
		closer    func()
	)
	switch *role {
	case "searcher":
		if *snapshot == "" {
			return fmt.Errorf("searcher needs -snapshot")
		}
		shard, err := index.New(index.Config{
			Dim: *dim, NLists: *nlists, ListInitialCap: *listCap, DefaultNProbe: *nprobe,
			PQSubvectors: *pqM, PQBits: *pqBits, RerankK: *pqRerank,
			FilterMaxNProbe: *filterNP, FilterMaxRerankK: *filterRK,
			FeatureStore: *featStore, SpillDir: *spillDir,
		})
		if err != nil {
			return err
		}
		f, err := os.Open(*snapshot)
		if err != nil {
			return err
		}
		err = shard.LoadSnapshot(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load snapshot: %w", err)
		}
		if shard.Config().PQSubvectors > 0 && !shard.PQEnabled() {
			// A pre-PQ (v1) snapshot carries features but no codes: train a
			// quantizer from the stored rows so this node still serves the
			// ADC scan path.
			if err := shard.TrainPQStored(*pqSample, *fseed); err != nil {
				return fmt.Errorf("pq re-encode: %w", err)
			}
		}
		node, err := searcher.New(searcher.Config{
			Partition:       core.PartitionID(*partition),
			Shard:           shard,
			Addr:            *addr,
			SearchWorkers:   *workers,
			LoadIdleTimeout: *loadIdle,
			BatchWindow:     *batchWin,
			BatchMaxQueries: *batchMax,
		})
		if err != nil {
			return err
		}
		boundAddr, closer = node.Addr(), node.Close
		st := shard.Stats()
		scanPath := "exact scan"
		if shard.PQEnabled() {
			cb := shard.PQCodebook()
			scanPath = fmt.Sprintf("ADC scan, %d-bit PQ, %d-byte codes", st.PQBits, cb.CodeBytes())
		}
		fmt.Printf("searcher partition %d serving %d images (%d valid, %s, %s feature store, %.1f MiB feature heap) on %s\n",
			*partition, st.Images, st.ValidImages, scanPath, shard.Config().FeatureStore,
			float64(st.FeatureHeapBytes)/(1<<20), boundAddr)

	case "broker":
		if *searchers == "" {
			return fmt.Errorf("broker needs -searchers")
		}
		var groups [][]string
		for _, group := range strings.Split(*searchers, ";") {
			var replicas []string
			for _, a := range strings.Split(group, ",") {
				if a = strings.TrimSpace(a); a != "" {
					replicas = append(replicas, a)
				}
			}
			if len(replicas) > 0 {
				groups = append(groups, replicas)
			}
		}
		node, err := broker.New(broker.Config{
			PartitionReplicas: groups,
			Addr:              *addr,
			HedgeQuantile:     *hedgeQ,
			HedgeMinDelay:     *hedgeMin,
			HedgeMaxFraction:  *hedgeFrac,
			ResultCacheSize:   *resCache,
			ResultCacheMaxLag: *resLag,
		})
		if err != nil {
			return err
		}
		boundAddr, closer = node.Addr(), node.Close
		fmt.Printf("broker serving %d partitions on %s\n", len(groups), boundAddr)

	case "blender":
		if *brokers == "" {
			return fmt.Errorf("blender needs -brokers")
		}
		node, err := blender.New(blender.Config{
			Brokers:          splitAddrs(*brokers),
			Extractor:        cnn.New(cnn.Config{Dim: *dim, Seed: *fseed}),
			Ranker:           ranking.New(ranking.DefaultWeights()),
			Addr:             *addr,
			FeatureCacheSize: *featCache,
		})
		if err != nil {
			return err
		}
		boundAddr, closer = node.Addr(), node.Close
		fmt.Printf("blender over %d brokers on %s\n", len(splitAddrs(*brokers)), boundAddr)

	case "frontend":
		if *blenders == "" {
			return fmt.Errorf("frontend needs -blenders")
		}
		node, err := frontend.New(frontend.Config{Blenders: splitAddrs(*blenders), Addr: *addr})
		if err != nil {
			return err
		}
		boundAddr, closer = node.Addr(), node.Close
		fmt.Printf("frontend over %d blenders on %s\n", len(splitAddrs(*blenders)), boundAddr)

	default:
		return fmt.Errorf("unknown -role %q (want searcher, broker, blender, frontend)", *role)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	closer()
	return nil
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
