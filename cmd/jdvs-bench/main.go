// Command jdvs-bench regenerates the paper's evaluation artifacts (§3)
// against the real system and prints paper-style tables and series.
//
// Usage:
//
//	jdvs-bench -experiment table1 [-events N]
//	jdvs-bench -experiment fig11  [-events N] [-day 12s]
//	jdvs-bench -experiment fig12  [-duration 3s] [-products N] [-rate N]
//	jdvs-bench -experiment fig13  [-duration 2s] [-products N]
//	jdvs-bench -experiment all
//
// Scale flags default to laptop-friendly sizes; raise -products /-events
// for a full-size run (the paper's testbed indexes 100,000 images).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jdvs/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "which artifact to regenerate: table1, fig11, fig12, fig13, all")
		events     = flag.Int("events", 0, "update events for table1/fig11 (0 = default scale)")
		day        = flag.Duration("day", 0, "real duration of fig11's simulated day (0 = default 12s)")
		duration   = flag.Duration("duration", 0, "measurement window per setting for fig12/fig13 (0 = defaults)")
		products   = flag.Int("products", 0, "catalog size for fig12/fig13 (0 = default 4000)")
		partitions = flag.Int("partitions", 0, "searcher partitions (0 = experiment default)")
		rate       = flag.Int("rate", 0, "fig12 concurrent update load in events/sec (0 = default 2000)")
		seed       = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	runOne := func(name string) error {
		started := time.Now()
		fmt.Printf("=== %s ===\n", name)
		defer func() { fmt.Printf("--- %s done in %s ---\n\n", name, time.Since(started).Round(time.Millisecond)) }()
		switch name {
		case "table1":
			res, err := experiments.RunTable1(experiments.Table1Config{
				Events: *events, Partitions: *partitions, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig11":
			res, err := experiments.RunFig11(experiments.Fig11Config{
				Events: *events, DayDuration: *day, Partitions: *partitions, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig12":
			res, err := experiments.RunFig12(experiments.Fig12Config{
				Duration: *duration, Products: *products, Partitions: *partitions,
				UpdateRate: *rate, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig13":
			res, err := experiments.RunFig13(experiments.Fig13Config{
				Duration: *duration, Products: *products, Partitions: *partitions, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		default:
			return fmt.Errorf("unknown experiment %q (want table1, fig11, fig12, fig13, all)", name)
		}
		return nil
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "fig11", "fig12", "fig13"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*experiment)
}
