// Command jdvs-bench regenerates the paper's evaluation artifacts (§3)
// against the real system and prints paper-style tables and series.
//
// Usage:
//
//	jdvs-bench -experiment table1 [-events N]
//	jdvs-bench -experiment fig11  [-events N] [-day 12s]
//	jdvs-bench -experiment fig12  [-duration 3s] [-products N] [-rate N]
//	jdvs-bench -experiment fig13  [-duration 2s] [-products N]
//	jdvs-bench -experiment hedge  [-duration 3s] [-replicas 2] [-slow-replica-ms 200] [-slow-replica-frac 0.2]
//	jdvs-bench -experiment filtered [-duration 2s] [-filter-selectivity 0.01] [-products N]
//	jdvs-bench -experiment cached [-duration 2s] [-zipf-s 1.1] [-query-pool 512] [-extract-work 256]
//	jdvs-bench -experiment batched [-duration 2s] [-zipf-s 2.0] [-query-pool 256] [-threads 16] [-pq-bits 4] [-batch-window 1ms] [-batch-max-queries 12]
//	jdvs-bench -experiment all
//
// Scale flags default to laptop-friendly sizes; raise -products /-events
// for a full-size run (the paper's testbed indexes 100,000 images).
//
// The hedge experiment injects -slow-replica-ms of extra latency into
// -slow-replica-frac of the last replica's searches on every partition and
// compares full-stack query tails with broker hedging off and on.
//
// The filtered experiment runs one query stream twice — unscoped, then with
// every query scoped to its product's category over a catalog sized so a
// scoped query admits ≈ -filter-selectivity of the corpus — and reports how
// the searchers' bitmap-admission pushdown keeps the scoped page full.
//
// The cached experiment runs one zipf-skewed query stream (-zipf-s) against
// two otherwise identical clusters — caches off, then the blender feature
// cache plus the broker result cache on — and reports hit rates and the
// closed-loop speedup the two levels recover.
//
// The batched experiment runs one zipf-skewed concurrent query stream
// against two otherwise identical PQ clusters — searchers answering every
// query alone, then collecting concurrent queries into -batch-window /
// -batch-max-queries windows executed through index.SearchBatch — and
// reports the closed-loop speedup plus a per-query result-equality audit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jdvs/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jdvs-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "which artifact to regenerate: table1, fig11, fig12, fig13, hedge, filtered, cached, batched, all")
		events     = flag.Int("events", 0, "update events for table1/fig11 (0 = default scale)")
		day        = flag.Duration("day", 0, "real duration of fig11's simulated day (0 = default 12s)")
		duration   = flag.Duration("duration", 0, "measurement window per setting for fig12/fig13 (0 = defaults)")
		products   = flag.Int("products", 0, "catalog size for fig12/fig13 (0 = default 4000)")
		partitions = flag.Int("partitions", 0, "searcher partitions (0 = experiment default)")
		rate       = flag.Int("rate", 0, "fig12 concurrent update load in events/sec (0 = default 2000)")
		seed       = flag.Int64("seed", 42, "workload seed")
		replicas   = flag.Int("replicas", 0, "hedge: searcher replicas per partition (0 = default 2)")
		slowMS     = flag.Int("slow-replica-ms", 0, "hedge: extra latency injected into the slow replica, in ms (0 = default 200)")
		slowFrac   = flag.Float64("slow-replica-frac", 0, "hedge: fraction of the slow replica's searches delayed (0 = default 0.2)")
		pqM        = flag.Int("pq-subvectors", 0, "fig12/fig13/hedge: product-quantization code bytes per image (0 = exact float scan, -1 = dimension-derived)")
		pqRerank   = flag.Int("pq-rerank", 0, "fig12/fig13/hedge: ADC over-fetch depth re-ranked exactly per query (0 = bit-width default: 20×TopK at 8 bits, 30×TopK at 4)")
		featStore  = flag.String("feature-store", "", "fig12/fig13/hedge: where searcher shards keep raw feature rows: ram (default, dim×4 heap bytes/image) or mmap (rows in a page-cache-served spill file; RAM holds only the M-byte PQ codes)")
		spillDir   = flag.String("spill-dir", "", "fig12/fig13/hedge: directory for feature-store spill files with -feature-store mmap (default: OS temp dir)")
		filterSel  = flag.Float64("filter-selectivity", 0, "filtered: fraction of the corpus one scoped query admits; the catalog gets round(1/selectivity) categories (0 = default 0.01)")
		zipfS      = flag.Float64("zipf-s", 0, "cached/batched: query skew exponent, must be > 1 (0 = experiment default: 1.1 cached, 2.0 batched)")
		queryPool  = flag.Int("query-pool", 0, "cached/batched: distinct query images in the zipf-weighted pool (0 = default: 512 cached, 256 batched)")
		extractW   = flag.Int("extract-work", 0, "cached: simulated CNN cost in extra forward passes per extraction (0 = default 256)")
		featCache  = flag.Int("feature-cache", 0, "cached: blender feature-cache capacity in vectors (0 = half the query pool)")
		resCache   = flag.Int("result-cache", 0, "cached: broker result-cache capacity in pages (0 = half the query pool)")
		threads    = flag.Int("threads", 0, "batched: closed-loop client concurrency (0 = default 16)")
		pqBits     = flag.Int("pq-bits", 0, "batched: searcher PQ code bit width, 4 or 8 (0 = default 4)")
		batchWin   = flag.Duration("batch-window", 0, "batched: searcher collection window on the batched side (0 = default 1ms)")
		batchMax   = flag.Int("batch-max-queries", 0, "batched: queries that close a collection window early (0 = default: three-quarters of -threads)")
	)
	flag.Parse()

	runOne := func(name string) error {
		started := time.Now()
		fmt.Printf("=== %s ===\n", name)
		defer func() { fmt.Printf("--- %s done in %s ---\n\n", name, time.Since(started).Round(time.Millisecond)) }()
		switch name {
		case "table1":
			res, err := experiments.RunTable1(experiments.Table1Config{
				Events: *events, Partitions: *partitions, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig11":
			res, err := experiments.RunFig11(experiments.Fig11Config{
				Events: *events, DayDuration: *day, Partitions: *partitions, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig12":
			res, err := experiments.RunFig12(experiments.Fig12Config{
				Duration: *duration, Products: *products, Partitions: *partitions,
				UpdateRate: *rate, Seed: *seed,
				PQSubvectors: *pqM, RerankK: *pqRerank,
				FeatureStore: *featStore, SpillDir: *spillDir,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig13":
			res, err := experiments.RunFig13(experiments.Fig13Config{
				Duration: *duration, Products: *products, Partitions: *partitions, Seed: *seed,
				PQSubvectors: *pqM, RerankK: *pqRerank,
				FeatureStore: *featStore, SpillDir: *spillDir,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "hedge":
			res, err := experiments.RunHedge(experiments.HedgeConfig{
				Duration:     *duration,
				Products:     *products,
				Partitions:   *partitions,
				Replicas:     *replicas,
				SlowDelay:    time.Duration(*slowMS) * time.Millisecond,
				SlowFraction: *slowFrac,
				PQSubvectors: *pqM,
				RerankK:      *pqRerank,
				FeatureStore: *featStore,
				SpillDir:     *spillDir,
				Seed:         *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "filtered":
			res, err := experiments.RunFiltered(experiments.FilteredConfig{
				Selectivity:  *filterSel,
				Duration:     *duration,
				Partitions:   *partitions,
				Products:     *products,
				PQSubvectors: *pqM,
				RerankK:      *pqRerank,
				Seed:         *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "cached":
			res, err := experiments.RunCached(experiments.CachedConfig{
				ZipfS:            *zipfS,
				Duration:         *duration,
				Partitions:       *partitions,
				Products:         *products,
				QueryPool:        *queryPool,
				ExtractWork:      *extractW,
				FeatureCacheSize: *featCache,
				ResultCacheSize:  *resCache,
				Seed:             *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "batched":
			res, err := experiments.RunBatched(experiments.BatchedConfig{
				ZipfS:           *zipfS,
				Threads:         *threads,
				Duration:        *duration,
				Partitions:      *partitions,
				Products:        *products,
				QueryPool:       *queryPool,
				PQBits:          *pqBits,
				BatchWindow:     *batchWin,
				BatchMaxQueries: *batchMax,
				Seed:            *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		default:
			return fmt.Errorf("unknown experiment %q (want table1, fig11, fig12, fig13, hedge, filtered, cached, batched, all)", name)
		}
		return nil
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "fig11", "fig12", "fig13", "hedge", "filtered", "cached", "batched"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*experiment)
}
