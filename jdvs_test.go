package jdvs_test

import (
	"context"
	"testing"
	"time"

	"jdvs"
)

// startCluster boots a small end-to-end cluster for tests.
func startCluster(t *testing.T, cfg jdvs.Config) *jdvs.Cluster {
	t.Helper()
	cl, err := jdvs.Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestEndToEndQuery(t *testing.T) {
	cl := startCluster(t, jdvs.Config{
		Partitions: 3,
		Brokers:    2,
		Blenders:   2,
		NLists:     16,
		Catalog:    jdvs.CatalogConfig{Products: 300, Categories: 8, Seed: 42},
	})
	c, err := cl.Client()
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Query with a fresh photo of a known product: that product should rank
	// in the results.
	target := &cl.Catalog.Products[7]
	resp, err := c.Query(ctx, jdvs.NewQuery(cl.Catalog.QueryImage(target).Encode(), 10))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("no hits returned")
	}
	found := false
	for _, h := range resp.Hits {
		if h.ProductID == target.ID {
			found = true
		}
		if h.URL == "" {
			t.Errorf("hit for product %d has empty URL", h.ProductID)
		}
	}
	if !found {
		t.Errorf("query for product %d did not return it; hits: %+v", target.ID, resp.Hits)
	}
	// Results must be unique per product (blender dedups).
	seen := make(map[uint64]bool)
	for _, h := range resp.Hits {
		if seen[h.ProductID] {
			t.Errorf("product %d appears twice in ranked results", h.ProductID)
		}
		seen[h.ProductID] = true
	}
}

func TestRealTimeFreshness(t *testing.T) {
	cl := startCluster(t, jdvs.Config{
		Partitions: 2,
		NLists:     16,
		Catalog:    jdvs.CatalogConfig{Products: 200, Categories: 6, Seed: 7},
	})
	c, err := cl.Client()
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	target := &cl.Catalog.Products[3]

	// Delete the product; it must disappear from results.
	if err := cl.Publish(cl.RemoveProductEvent(target)); err != nil {
		t.Fatalf("publish remove: %v", err)
	}
	if !cl.WaitForDrain(5 * time.Second) {
		t.Fatal("real-time indexing did not drain after removal")
	}
	resp, err := c.Query(ctx, jdvs.NewQuery(cl.Catalog.QueryImage(target).Encode(), 10))
	if err != nil {
		t.Fatalf("Query after removal: %v", err)
	}
	for _, h := range resp.Hits {
		if h.ProductID == target.ID {
			t.Fatalf("removed product %d still in results", target.ID)
		}
	}

	// Re-add it; it must come back (feature reuse path).
	if err := cl.Publish(cl.AddProductEvent(target)); err != nil {
		t.Fatalf("publish re-add: %v", err)
	}
	if !cl.WaitForDrain(5 * time.Second) {
		t.Fatal("real-time indexing did not drain after re-add")
	}
	resp, err = c.Query(ctx, jdvs.NewQuery(cl.Catalog.QueryImage(target).Encode(), 10))
	if err != nil {
		t.Fatalf("Query after re-add: %v", err)
	}
	found := false
	for _, h := range resp.Hits {
		if h.ProductID == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("re-added product %d not in results", target.ID)
	}
}
