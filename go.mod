module jdvs

go 1.24
