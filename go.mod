module jdvs

go 1.23
